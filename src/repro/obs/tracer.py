"""Tick-scoped tracing: spans with parent/child links, near-zero when off.

A :class:`Tracer` produces :class:`Span` records nested by a span stack
(``tick > system > script``, ``wal.append > wal.fsync``, ``2pc.prepare``,
``repl.ship``, ``failover``) and hands completed spans to a *sink* —
:class:`MemorySink` for tests, the flight recorder's ring buffer in
production runs, or :class:`NullSink` when tracing is off.

**Determinism.** Timestamps are *logical* by default: every tick owns a
window of :data:`TICK_STRIDE_US` fake microseconds and events within the
tick are sequenced by a per-tick counter — no wall-clock reads, so two
same-seed runs emit identical traces.  Benchmarks that want real
durations inject a ``wall_clock`` callable explicitly.

**Zero overhead when disabled.** A disabled tracer's :meth:`Tracer.span`
returns the shared :data:`NOOP_SPAN` without allocating; instrumented
hot paths additionally guard on :attr:`Tracer.enabled` before building
keyword arguments, so the disabled path costs one attribute read and a
branch.

**Lanes.** A tracer carries a *lane* — the ``(node_id, shard_id)``
namespace its logical timestamps live in (``"shard:0"``, ``"coord"``,
``"gw"``).  :meth:`Tracer.fork` derives a per-host tracer sharing the
sink and span-id allocator but owning its own tick window and span
stack, so merged multi-host traces no longer interleave on colliding
tick-derived timestamps: the exporter maps each lane to its own
timeline row, and :class:`FlowPoint` pairs (emitted by
:meth:`Tracer.flow_start` / :meth:`Tracer.flow_finish`) re-join the
per-lane span trees into one causal graph — rendered as Perfetto's
flow arrows.
"""

from __future__ import annotations

from typing import Any, Callable

#: Logical microseconds per tick: tick T owns [T*stride, (T+1)*stride).
TICK_STRIDE_US = 10_000


class Span:
    """One completed (or in-progress) unit of traced work.

    Spans are context managers tied to their tracer: entering pushes
    onto the span stack (fixing ``parent_id`` and the start timestamp),
    exiting pops and delivers the finished span to the sink.
    """

    __slots__ = (
        "span_id", "parent_id", "name", "cat", "tick", "ts", "dur", "args",
        "lane", "_tracer",
    )

    def __init__(self, tracer: "Tracer", span_id: int, name: str, cat: str,
                 args: dict[str, Any]):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = 0
        self.name = name
        self.cat = cat
        self.tick = 0
        self.ts = 0
        self.dur = 0
        self.args = args
        self.lane = tracer.lane

    def set(self, **args: Any) -> None:
        """Attach result arguments to the span (visible in the export)."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack
        self.parent_id = stack[-1].span_id if stack else 0
        self.tick = tracer.current_tick
        self.ts = tracer._now()
        stack.append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        tracer._stack.pop()
        end = tracer._now()
        self.dur = end - self.ts if end > self.ts else 0
        tracer.sink.on_span(self)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Span(#{self.span_id} {self.name!r} tick={self.tick} "
            f"ts={self.ts} dur={self.dur} parent={self.parent_id})"
        )


class TraceEvent:
    """A structured instant event (no duration) — crash marks, corruption."""

    __slots__ = ("name", "cat", "tick", "ts", "args", "lane")

    def __init__(self, name: str, cat: str, tick: int, ts: int | float,
                 args: dict[str, Any], lane: str = ""):
        self.name = name
        self.cat = cat
        self.tick = tick
        self.ts = ts
        self.args = args
        self.lane = lane

    def __repr__(self) -> str:  # pragma: no cover
        return f"TraceEvent({self.name!r} tick={self.tick} ts={self.ts})"


class FlowPoint:
    """One end of a cross-lane causal arrow (Chrome flow event).

    A *flow* is a pair of points sharing a ``flow_id``: the start
    (``phase == "s"``) is emitted where a message leaves one lane, the
    finish (``phase == "f"``) where it is consumed in another.  The
    exporter renders bound pairs as Perfetto flow arrows between the
    slices enclosing each point's timestamp.
    """

    __slots__ = ("phase", "flow_id", "name", "cat", "tick", "ts", "lane")

    def __init__(self, phase: str, flow_id: str, name: str, cat: str,
                 tick: int, ts: int | float, lane: str = ""):
        self.phase = phase
        self.flow_id = flow_id
        self.name = name
        self.cat = cat
        self.tick = tick
        self.ts = ts
        self.lane = lane

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FlowPoint({self.phase} {self.flow_id!r} {self.name!r} "
            f"tick={self.tick} lane={self.lane!r})"
        )


class _NoopSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def set(self, **args: Any) -> None:
        """No-op."""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: Singleton no-op span/context manager; also usable directly as the
#: ``else`` arm of ``with (tracer.span(...) if traced else NOOP_SPAN):``.
NOOP_SPAN = _NoopSpan()


class NullSink:
    """Discards everything; marks the tracer disabled (the fast path)."""

    enabled = False

    def on_span(self, span: Span) -> None:
        """Drop the span."""

    def on_event(self, event: TraceEvent) -> None:
        """Drop the event."""

    def on_flow(self, flow: FlowPoint) -> None:
        """Drop the flow point."""


class MemorySink:
    """Collects spans, events, and flow points — the test/inspection sink."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self.flows: list[FlowPoint] = []

    def on_span(self, span: Span) -> None:
        """Record a completed span."""
        self.spans.append(span)

    def on_event(self, event: TraceEvent) -> None:
        """Record an instant event."""
        self.events.append(event)

    def on_flow(self, flow: FlowPoint) -> None:
        """Record one end of a causal flow arrow."""
        self.flows.append(flow)

    def clear(self) -> None:
        """Drop everything collected so far."""
        self.spans.clear()
        self.events.clear()
        self.flows.clear()


class Tracer:
    """Produces tick-scoped spans and instant events into a sink.

    Parameters
    ----------
    sink:
        Where completed spans/events go.  ``None`` means a
        :class:`NullSink` — the tracer is disabled and
        :meth:`span`/:meth:`event` cost a branch.
    wall_clock:
        Optional real time source (seconds, e.g. ``time.perf_counter``).
        When given, timestamps are real microseconds; by default they
        are deterministic logical microseconds derived from the tick.
    lane:
        Timestamp namespace (``""`` for a single-process tracer,
        ``"shard:0"``/``"coord"``/``"gw"`` for cluster hosts).  Forked
        tracers (see :meth:`fork`) stamp their lane on every span so
        the exporter can give each host its own timeline row.
    """

    def __init__(
        self,
        sink: Any | None = None,
        wall_clock: Callable[[], float] | None = None,
        lane: str = "",
    ):
        self.sink = sink if sink is not None else NullSink()
        self.enabled: bool = bool(getattr(self.sink, "enabled", True))
        self.wall_clock = wall_clock
        self.lane = lane
        self.current_tick = 0
        self._stack: list[Span] = []
        self._seq = 0
        # Span/flow ids are allocated from a *shared* mutable counter so
        # forked per-lane tracers never collide (parent links and flow
        # ids stay unique across the merged trace).
        self._ids = {"span": 0, "flow": 0}

    def begin_tick(self, tick: int) -> None:
        """Mark the start of a tick, resetting the logical sequence.

        Ignored while spans are open: in a cluster the coordinator owns
        tick numbering, and the per-shard worlds ticking *inside* its
        ``cluster.tick`` span must not restamp the window.
        """
        if self._stack:
            return
        self.current_tick = tick
        self._seq = 0

    def _now(self) -> int | float:
        if self.wall_clock is not None:
            return self.wall_clock() * 1e6
        self._seq += 1
        return self.current_tick * TICK_STRIDE_US + min(
            self._seq, TICK_STRIDE_US - 1
        )

    def span(self, name: str, cat: str = "", **args: Any) -> Span | _NoopSpan:
        """Open a span (use as a context manager).

        Returns the shared :data:`NOOP_SPAN` when disabled; hot call
        sites should still guard on :attr:`enabled` before building
        keyword arguments.
        """
        if not self.enabled:
            return NOOP_SPAN
        ids = self._ids
        ids["span"] += 1
        return Span(self, ids["span"], name, cat, args)

    def event(self, name: str, cat: str = "", **args: Any) -> None:
        """Emit an instant event at the current logical time."""
        if not self.enabled:
            return
        self.sink.on_event(
            TraceEvent(name, cat, self.current_tick, self._now(), args,
                       self.lane)
        )

    def fork(self, lane: str) -> "Tracer":
        """Derive a per-host tracer in its own timestamp *lane*.

        The fork shares the sink, wall clock, and span/flow id
        allocator with its parent, but owns its own span stack, tick
        window, and sequence counter — two lanes ticking the same tick
        number no longer interleave their timestamps in the merge.
        """
        child = Tracer(self.sink, self.wall_clock, lane)
        child._ids = self._ids
        return child

    def flow_start(self, name: str, cat: str = "") -> str:
        """Open a causal flow arrow; returns its id (``""`` when off).

        Emit at the point a message *leaves* this lane (inside the span
        that produced it); pass the id across the process/lane boundary
        and close it with :meth:`flow_finish` where it is consumed.
        """
        if not self.enabled:
            return ""
        ids = self._ids
        ids["flow"] += 1
        flow_id = f"{self.lane or 'main'}:{ids['flow']}"
        self.sink.on_flow(
            FlowPoint("s", flow_id, name, cat, self.current_tick,
                      self._now(), self.lane)
        )
        return flow_id

    def flow_finish(self, flow_id: str, name: str = "", cat: str = "") -> None:
        """Close a causal flow arrow at the consuming end.

        No-op when disabled or when ``flow_id`` is empty (the start was
        emitted by a disabled tracer).
        """
        if not self.enabled or not flow_id:
            return
        self.sink.on_flow(
            FlowPoint("f", flow_id, name, cat, self.current_tick,
                      self._now(), self.lane)
        )

    @property
    def depth(self) -> int:
        """Currently open span count (0 between frames)."""
        return len(self._stack)

    def __repr__(self) -> str:  # pragma: no cover
        state = "on" if self.enabled else "off"
        return f"Tracer({state}, tick={self.current_tick}, depth={self.depth})"
