"""The :class:`Observability` facade and the session default.

One object bundles the three observability legs — metrics registry,
tracer, flight recorder — so runtime constructors take a single ``obs``
parameter.  The disabled facade is a shared singleton
(:data:`DISABLED_OBS`): no registry, a null tracer, no recorder, zero
allocation per world/cluster.

``set_default_observability`` installs a session-wide default that
constructors fall back to when not handed an ``obs`` explicitly — the
mechanism behind the benchmark harness's ``--trace-out`` flag, which
captures a whole benchmark run without threading a parameter through
every layer.  The default deliberately carries **no metrics registry**:
sharing one registry across sequentially-created clusters would merge
their per-shard counters and break same-seed snapshot equality, so each
cluster still creates its own.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.tracer import Tracer


class Observability:
    """Bundle of metrics registry, tracer, and flight recorder.

    Construct directly for full control, or use the presets:
    :meth:`metrics_only` (counters/gauges/histograms, no spans),
    :meth:`full` (metrics + tracing into a flight recorder), and
    :meth:`tracing_only` (spans without a registry — the trace-session
    shape).  A bare ``Observability()`` is disabled on every leg.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
    ):
        if tracer is None:
            tracer = Tracer(sink=recorder) if recorder is not None else DISABLED_TRACER
        self.metrics = metrics
        self.tracer = tracer
        self.recorder = recorder
        self._stats_providers: dict[str, Callable[[], Any]] = {}

    # -- presets ------------------------------------------------------------------

    @classmethod
    def metrics_only(cls) -> "Observability":
        """Registry on, tracing off — the cheap always-on mode."""
        return cls(metrics=MetricsRegistry())

    @classmethod
    def full(
        cls,
        last_ticks: int = 64,
        max_items: int = 100_000,
        dump_dir: str | Path | None = None,
        wall_clock: Callable[[], float] | None = None,
    ) -> "Observability":
        """Metrics plus tracing into a flight recorder ring buffer."""
        recorder = FlightRecorder(
            last_ticks=last_ticks, max_items=max_items, dump_dir=dump_dir
        )
        return cls(
            metrics=MetricsRegistry(),
            tracer=Tracer(sink=recorder, wall_clock=wall_clock),
            recorder=recorder,
        )

    @classmethod
    def tracing_only(
        cls, last_ticks: int = 1_000_000, max_items: int = 200_000
    ) -> "Observability":
        """Tracing without a registry — safe as a shared session default."""
        recorder = FlightRecorder(last_ticks=last_ticks, max_items=max_items)
        return cls(tracer=Tracer(sink=recorder), recorder=recorder)

    # -- convenience --------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether tracing is on (metrics may still be active when off)."""
        return self.tracer.enabled

    def lane(self, name: str) -> "Observability":
        """A per-host view of this facade in its own timestamp lane.

        Returns a lightweight clone sharing the metrics registry,
        recorder, and stats-provider map, but whose tracer is a
        :meth:`~repro.obs.tracer.Tracer.fork` into ``name`` — the
        (node_id, shard_id) namespace for that host's spans.  With
        tracing disabled (including the shared :data:`DISABLED_OBS`)
        this returns ``self``: no allocation on the off path.
        """
        if self is DISABLED_OBS or not self.tracer.enabled:
            return self
        clone = Observability.__new__(Observability)
        clone.metrics = self.metrics
        clone.tracer = self.tracer.fork(name)
        clone.recorder = self.recorder
        clone._stats_providers = self._stats_providers
        return clone

    def flight_dump(self, reason: str) -> dict[str, Any] | None:
        """Dump the flight recorder (None when no recorder is attached)."""
        if self.recorder is None:
            return None
        return self.recorder.dump(reason)

    def snapshot(self) -> dict[str, Any]:
        """The metrics snapshot ({} when no registry is attached)."""
        return self.metrics.snapshot() if self.metrics is not None else {}

    # -- stats providers ----------------------------------------------------------

    def register_stats(self, name: str, provider: Callable[[], Any]) -> str:
        """Register a subsystem's ``stats`` callable under ``name``.

        Every subsystem with a ``stats()`` method registers it here so
        the hub can enumerate them all (:meth:`collect_stats`).  Name
        collisions are resolved by suffixing ``#2``, ``#3``, … — two
        shards both registering ``"forwarding"`` each stay reachable.
        Returns the name actually used.  On the shared disabled facade
        this is a no-op (nothing is retained).
        """
        if self is DISABLED_OBS:
            return name
        unique = name
        serial = 1
        while unique in self._stats_providers:
            serial += 1
            unique = f"{name}#{serial}"
        self._stats_providers[unique] = provider
        return unique

    def unregister_stats(self, name: str) -> None:
        """Drop a provider registered under ``name`` (missing is fine)."""
        self._stats_providers.pop(name, None)

    def stats_providers(self) -> dict[str, Callable[[], Any]]:
        """Copy of the registered provider map, keyed by unique name."""
        return dict(self._stats_providers)

    def collect_stats(self) -> dict[str, dict[str, Any]]:
        """Invoke every registered provider; one snapshot dict per name."""
        return {
            name: dict(provider())
            for name, provider in sorted(self._stats_providers.items())
        }

    def write_chrome_trace(
        self, path: str | Path, reason: str = "trace", label: str = "repro"
    ) -> dict[str, Any]:
        """Write the recorder's current window to ``path`` as JSON."""
        if self.recorder is None:
            raise ObsError("no flight recorder attached; nothing to write")
        doc = self.recorder.export(reason, label=label)
        Path(path).write_text(json.dumps(doc), encoding="utf-8")
        return doc

    def __repr__(self) -> str:  # pragma: no cover
        legs = [
            "metrics" if self.metrics is not None else None,
            "tracing" if self.tracer.enabled else None,
            "recorder" if self.recorder is not None else None,
        ]
        on = ", ".join(leg for leg in legs if leg) or "disabled"
        return f"Observability({on})"


#: Shared disabled tracer: one branch per instrumented call, no state.
DISABLED_TRACER = Tracer()

#: Shared fully-disabled facade used by constructors given obs=None.
DISABLED_OBS = Observability()

_default_obs: Observability | None = None


def set_default_observability(
    obs: Observability | None,
) -> Observability | None:
    """Install the session-wide default ``obs`` fallback; returns the old one.

    Pass ``None`` to clear.  Used by the benchmark harness's trace
    sessions; prefer passing ``obs`` explicitly everywhere else.
    """
    global _default_obs
    previous = _default_obs
    _default_obs = obs
    return previous


def get_default_observability() -> Observability | None:
    """The session-wide default installed by :func:`set_default_observability`."""
    return _default_obs


def resolve_obs(obs: Observability | None) -> Observability:
    """The facade a constructor should use: explicit > default > disabled."""
    if obs is not None:
        return obs
    return _default_obs if _default_obs is not None else DISABLED_OBS
