"""Unified metrics: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` replaces the three counter idioms that grew
ad hoc across the stack (``FrameBudget`` timings, ``ShardStats``,
``LinkStats``): every runtime layer creates named, labelled cells in a
registry and bumps them directly.  The registry is **deterministic under
seeds** — nothing in this module reads the wall clock, and a snapshot is
a sorted plain dict, so two same-seed runs produce identical snapshots.
Real durations (frame budgets, benchmark timings) enter only through an
injectable time source the caller controls; replay tests inject
:class:`ManualTimeSource` and get bit-identical reports.

Registries are cheap, per-instance objects.  A coordinator, network, or
world creates its own unless handed one — sharing is an explicit choice,
which keeps sequentially-created clusters from merging their counters.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Mapping

from repro.errors import ObsError

#: Default histogram bucket upper bounds, in seconds (frame-time scale).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0,
)


class Counter:
    """A monotonically-growing numeric cell.

    ``value`` is public and writable on purpose: migrated stat facades
    (``ShardStats``, ``LinkStats``) keep their ``stats.sent += 1`` call
    sites by reading and writing it directly.
    """

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}{self.labels or ''}={self.value})"


class Gauge:
    """A numeric cell that can move in both directions (a level, not a rate)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        """Set the gauge to an absolute value."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gauge({self.name}{self.labels or ''}={self.value})"


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last bound.  Sum and count are tracked exactly,
    so means are available without loss.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "total", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if not bounds or list(bounds) != sorted(bounds):
            raise ObsError("histogram bounds must be non-empty and sorted")
        self.name = name
        self.labels = dict(labels)
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        Walks the cumulative bucket counts to the bucket holding the
        target rank, then interpolates linearly between the bucket's
        edges (the lower edge of the first bucket is 0.0).  Overflow
        observations clamp to the last bound — a fixed-bucket histogram
        cannot see past it.  Returns 0.0 with no observations; raises
        :class:`~repro.errors.ObsError` for ``q`` outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile q must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.bucket_counts):
            if cumulative + n >= target:
                if n == 0:
                    return lower
                return lower + (bound - lower) * (target - cumulative) / n
            cumulative += n
            lower = bound
        return self.bounds[-1]

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form used by :meth:`MetricsRegistry.snapshot`."""
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {
                str(bound): n
                for bound, n in zip(self.bounds, self.bucket_counts)
            },
            "overflow": self.bucket_counts[-1],
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.6f})"


class MetricsRegistry:
    """Get-or-create home for every metric cell in one runtime instance.

    Cells are keyed by name plus sorted labels, so
    ``registry.counter("wal.fsyncs", shard="0")`` always returns the same
    :class:`Counter`.  :meth:`snapshot` renders the whole registry as a
    sorted plain dict — the object the determinism tests compare across
    same-seed runs.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Mapping[str, Any]) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        return f"{name}{{{inner}}}"

    def _get_or_create(self, cls: type, name: str, labels: dict, **extra: Any):
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, **extra)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ObsError(
                f"metric {key!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create the counter with this name and label set."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create the gauge with this name and label set."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """Get or create the histogram with this name and label set."""
        return self._get_or_create(Histogram, name, labels, bounds=bounds)

    def get(self, name: str, **labels: Any) -> Counter | Gauge | Histogram | None:
        """Look up a cell without creating it (None when absent)."""
        return self._metrics.get(self._key(name, labels))

    def cells(self) -> list[Counter | Gauge | Histogram]:
        """Every registered cell, sorted by key (the exposition order)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Deterministic plain-dict view of every cell, sorted by key.

        Counters and gauges render as their value, histograms as their
        :meth:`Histogram.as_dict`.  Two same-seed runs of any simulated
        workload must produce equal snapshots.
        """
        out: dict[str, Any] = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if isinstance(metric, Histogram):
                out[key] = metric.as_dict()
            else:
                out[key] = metric.value
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"MetricsRegistry({len(self._metrics)} metrics)"


class ManualTimeSource:
    """Injectable fake clock for replay-exact duration measurements.

    Calling the instance returns the current fake time and then advances
    it by ``step`` — so a ``start``/``stop`` pair measures exactly
    ``step`` seconds, every run, regardless of host load.  Use
    :meth:`advance` to model a slow system explicitly.
    """

    __slots__ = ("now", "step")

    def __init__(self, step: float = 0.001, start: float = 0.0):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        return current

    def advance(self, seconds: float) -> None:
        """Jump the fake clock forward (models one slow call)."""
        self.now += seconds


class StatsRow(dict):
    """A point-in-time ``stats()`` snapshot with a stable column order.

    Subsystem ``stats()`` methods return one of these: it *is* a plain
    dict (so ``stats()["hits"]`` and dict equality keep working), but it
    also carries the tabular contract the benchmark tables and the
    observability hub consume — ``COLUMNS`` names the canonical column
    order and :meth:`as_row` renders the values in that order.  Storage
    for the underlying counters lives in a :class:`MetricsRegistry`
    wherever one is available; the row is a snapshot, never a live view,
    so ``before``/``after`` deltas behave.
    """

    #: Canonical column order for :meth:`as_row`; subclasses override.
    COLUMNS: tuple[str, ...] = ()

    def __init__(self, columns: tuple[str, ...] | None = None, /, **values: Any):
        super().__init__(values)
        if columns is not None:
            # Per-instance override so ad-hoc rows need no subclass.
            self.COLUMNS = tuple(columns)
        elif not self.COLUMNS:
            self.COLUMNS = tuple(values)

    def as_row(self) -> tuple:
        """Values in ``COLUMNS`` order (missing columns render as None)."""
        return tuple(self.get(c) for c in self.COLUMNS)


class StatView:
    """Base for stat facades whose fields live in a :class:`MetricsRegistry`.

    Subclasses pass a mapping ``{field_name: cell}``; attribute reads
    return the cell's value and attribute writes (including ``+=``)
    store through to the cell.  This is how ``ShardStats`` and
    ``LinkStats`` kept their public field API while their storage moved
    into the registry.
    """

    __slots__ = ("_cells",)

    def __init__(self, cells: Mapping[str, Counter | Gauge]):
        object.__setattr__(self, "_cells", dict(cells))

    def __getattr__(self, name: str) -> Any:
        cells = object.__getattribute__(self, "_cells")
        try:
            return cells[name].value
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        cells = object.__getattribute__(self, "_cells")
        if name in cells:
            cells[name].value = value
        else:
            object.__setattr__(self, name, value)
