"""Causal trace context: follow one request across lanes and processes.

The PR 3 tracer answers "what did tick T do on this host"; this module
answers "why was *this* client's update slow" across the whole
gateway → cluster → durable → outbox → delivery chain.  Three pieces:

- :class:`TraceContext` — the tiny header stamped on gateway frames at
  ingress and carried on every :class:`~repro.net.simnet.SimNetwork`
  message (and, over real sockets, in the ``net.protocol`` context
  wrapper).  It names the request (``trace_id``), the span that sent
  the message, the in-flight flow arrow, and the origin tick.
- :func:`emit_context` / :func:`accept_context` — the sender/receiver
  halves every propagation site uses.  ``emit_context`` opens a flow
  arrow in the sender's lane and returns a fresh context carrying the
  same ``trace_id``; ``accept_context`` closes the arrow in the
  receiver's lane.  With tracing disabled both collapse to (almost)
  nothing — the context still rides through so SLO accounting works in
  metrics-only deployments.
- :class:`RequestTracker` — the gateway-side ledger that turns raw
  ingress/delivery observations into per-request latency decomposition
  (queue / tick / commit / outbox / flush segments), completion
  accounting for the E21 completeness criterion, and SLO samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.slo import SLOPlane
    from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class TraceContext:
    """The causal header carried across lane and process boundaries.

    Frozen and tiny on purpose: it is copied onto every propagated
    message.  ``flow_id`` is the in-flight Perfetto arrow (empty when
    tracing is off); ``span_id`` is the sender-side span for parent
    linkage; ``origin_tick`` is when the request entered the system.
    """

    trace_id: str
    span_id: int = 0
    flow_id: str = ""
    origin_tick: int = 0

    def to_wire(self) -> dict[str, Any]:
        """Compact dict form for the ``net.protocol`` context wrapper."""
        return {
            "t": self.trace_id,
            "s": self.span_id,
            "f": self.flow_id,
            "o": self.origin_tick,
        }

    @classmethod
    def from_wire(cls, payload: dict[str, Any]) -> "TraceContext":
        """Rebuild a context from its :meth:`to_wire` form."""
        return cls(
            trace_id=str(payload.get("t", "")),
            span_id=int(payload.get("s", 0)),
            flow_id=str(payload.get("f", "")),
            origin_tick=int(payload.get("o", 0)),
        )


def emit_context(
    tracer: "Tracer",
    carry: TraceContext | None = None,
    name: str = "net.send",
    cat: str = "net",
) -> TraceContext | None:
    """Open a flow arrow for an outgoing message; returns its context.

    ``carry`` is the context the message continues (its ``trace_id``
    propagates); ``None`` starts nothing — an uncontextualised message
    with tracing off stays uncontextualised.  With tracing disabled the
    carried context passes through untouched so trace ids still reach
    the far side for SLO accounting.
    """
    if not tracer.enabled:
        return carry
    flow_id = tracer.flow_start(name, cat)
    stack = tracer._stack
    span_id = stack[-1].span_id if stack else 0
    if carry is not None:
        return TraceContext(carry.trace_id, span_id, flow_id,
                            carry.origin_tick)
    return TraceContext(f"msg:{flow_id}", span_id, flow_id,
                        tracer.current_tick)


def accept_context(
    tracer: "Tracer",
    ctx: TraceContext | None,
    name: str = "net.recv",
    cat: str = "net",
) -> str:
    """Close an incoming message's flow arrow; returns its ``trace_id``.

    Call where the message is consumed (inside the handling span, so
    Perfetto binds the arrow to that slice).  Tolerates ``None`` and
    contexts whose flow was opened by a disabled tracer.
    """
    if ctx is None:
        return ""
    if tracer.enabled and ctx.flow_id:
        tracer.flow_finish(ctx.flow_id, name, cat)
    return ctx.trace_id


class _Pending:
    """One in-flight request in the :class:`RequestTracker` ledger."""

    __slots__ = ("trace_id", "sid", "ingress_tick", "flow_id", "marks",
                 "ticked_tick")

    def __init__(self, trace_id: str, sid: Any, ingress_tick: int,
                 flow_id: str):
        self.trace_id = trace_id
        self.sid = sid
        self.ingress_tick = ingress_tick
        self.flow_id = flow_id
        self.marks: dict[str, int] = {}
        self.ticked_tick = -1


class RequestTracker:
    """Per-request latency ledger: ingress → segments → delivered delta.

    The gateway calls :meth:`ingress` when an ``InputCommand`` frame
    arrives, :meth:`on_tick` every tick, and :meth:`deliver` when a
    session's send queue flushes a delta whose tick post-dates the
    request — at which point the request is *complete*: a terminal
    ``request.delivered`` span is emitted carrying the segment
    decomposition, the flow arrow closes, and the SLO plane (when
    attached) records the end-to-end latency.  Cluster/durable layers
    call :meth:`mark` to stamp commit/outbox segments onto the ledger
    by trace id.  Event-carried requests bind a dedup key via
    :meth:`bind_event`; the first delivery completes them and
    redeliveries are no-ops (the bind is popped).

    Keyed by session id, so resume (same sid, new transport) keeps the
    pending request alive.  Requests whose session closes before
    delivery count as *abandoned*, not incomplete — churned clients do
    not poison the completeness ratio.
    """

    def __init__(
        self,
        tracer: "Tracer",
        slo: "SLOPlane | None" = None,
        ttl_ticks: int = 64,
    ):
        self.tracer = tracer
        self.slo = slo
        self.ttl_ticks = ttl_ticks
        self._pending: dict[Any, list[_Pending]] = {}
        self._by_trace: dict[str, _Pending] = {}
        self._event_binds: dict[Any, str] = {}
        self._serial = 0
        self.issued = 0
        self.completed = 0
        self.abandoned = 0
        self.expired = 0

    # -- gateway-facing ----------------------------------------------------------

    def ingress(self, sid: Any, tick: int) -> TraceContext:
        """Record a request entering at the gateway; returns its context."""
        tracer = self.tracer
        self._serial += 1
        trace_id = f"req:{self._serial}"
        self.issued += 1
        flow_id = ""
        span_id = 0
        if tracer.enabled:
            with tracer.span("request.ingress", cat="request",
                             trace_id=trace_id, sid=sid) as span:
                flow_id = tracer.flow_start("request", "request")
                span_id = span.span_id
        pending = _Pending(trace_id, sid, tick, flow_id)
        self._pending.setdefault(sid, []).append(pending)
        self._by_trace[trace_id] = pending
        return TraceContext(trace_id, span_id, flow_id, tick)

    def on_tick(self, tick: int) -> None:
        """Advance the ledger one tick: stamp queue→tick edges, expire."""
        expired: list[_Pending] = []
        for reqs in self._pending.values():
            for pending in reqs:
                if pending.ticked_tick < 0 and tick > pending.ingress_tick:
                    pending.ticked_tick = tick
                if tick - pending.ingress_tick > self.ttl_ticks:
                    expired.append(pending)
        for pending in expired:
            self._forget(pending)
            self.expired += 1
            self.tracer.flow_finish(pending.flow_id, "request.expired",
                                    "request")

    def mark(self, trace_id: str, segment: str, tick: int) -> None:
        """Stamp a named segment (``commit``, ``outbox``…) on a request."""
        pending = self._by_trace.get(trace_id)
        if pending is not None:
            pending.marks.setdefault(segment, tick)

    def bind_event(self, dedup: Any, trace_id: str) -> None:
        """Tie an outbox event's dedup key to the request it answers."""
        if trace_id in self._by_trace:
            self._event_binds[dedup] = trace_id

    def mark_dedup(self, dedup: Any, segment: str, tick: int) -> None:
        """Stamp a segment on the request bound to an event's dedup key.

        The outbox path knows the dedup key, not the trace id — this
        resolves the bind (without consuming it) and stamps the mark.
        """
        trace_id = self._event_binds.get(dedup)
        if trace_id:
            self.mark(trace_id, segment, tick)

    def note_event(self, dedup: Any, tick: int) -> None:
        """An event reached a client: complete its bound request (once).

        The bind is popped, so an outbox *redelivery* of the same dedup
        key finds nothing and emits no second terminal span.
        """
        trace_id = self._event_binds.pop(dedup, None)
        if trace_id is None:
            return
        pending = self._by_trace.get(trace_id)
        if pending is not None:
            self._complete(pending, tick, kind="event")

    def deliver(self, sid: Any, delta_tick: int, tick: int) -> None:
        """A delta for tick ``delta_tick`` flushed to session ``sid``.

        Completes every pending request on the session that entered
        before the delta's tick — the delta observably answers it.
        """
        reqs = self._pending.get(sid)
        if not reqs:
            return
        answered = [p for p in reqs if p.ingress_tick < delta_tick]
        for pending in answered:
            self._complete(pending, tick, kind="delta")

    def drop_session(self, sid: Any, tick: int) -> None:
        """Session closed for good: abandon its in-flight requests."""
        for pending in self._pending.pop(sid, ()):
            self._by_trace.pop(pending.trace_id, None)
            self.abandoned += 1
            self.tracer.flow_finish(pending.flow_id, "request.abandoned",
                                    "request")

    # -- internals ---------------------------------------------------------------

    def _forget(self, pending: _Pending) -> None:
        reqs = self._pending.get(pending.sid)
        if reqs is not None:
            try:
                reqs.remove(pending)
            except ValueError:
                pass
            if not reqs:
                del self._pending[pending.sid]
        self._by_trace.pop(pending.trace_id, None)

    def _complete(self, pending: _Pending, tick: int, kind: str) -> None:
        self._forget(pending)
        self.completed += 1
        e2e = tick - pending.ingress_tick
        segments = self.segments_of(pending, tick)
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("request.delivered", cat="request",
                             trace_id=pending.trace_id, sid=pending.sid,
                             kind=kind, e2e_ticks=e2e, **segments):
                tracer.flow_finish(pending.flow_id, "request", "request")
        if self.slo is not None:
            self.slo.record(e2e, pending.trace_id)

    @staticmethod
    def segments_of(pending: _Pending, done_tick: int) -> dict[str, int]:
        """The latency decomposition for one request, in ticks.

        ``queue`` is ingress → first tick that saw it, ``tick`` the
        simulation step itself, ``flush`` the remainder until the
        answering delta left the send queue; ``commit``/``outbox``
        appear when the durable tier stamped those marks.
        """
        ticked = (pending.ticked_tick if pending.ticked_tick >= 0
                  else done_tick)
        out = {
            "queue": max(ticked - pending.ingress_tick - 1, 0),
            "tick": min(1, max(done_tick - pending.ingress_tick, 0)),
            "flush": max(done_tick - ticked, 0),
        }
        for segment, tick in pending.marks.items():
            out[segment] = max(tick - pending.ingress_tick, 0)
        return out

    # -- reporting ---------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Requests currently pending delivery."""
        return len(self._by_trace)

    def completeness(self) -> float:
        """Completed / (issued − abandoned): the E21 acceptance ratio.

        Abandoned requests (client churned away mid-flight) are excluded
        from the denominator — nothing could have answered them.
        """
        denominator = self.issued - self.abandoned
        return self.completed / denominator if denominator else 1.0

    def stats(self) -> dict[str, Any]:
        """Ledger counters for ``collect_stats()`` / the telemetry channel."""
        return {
            "issued": self.issued,
            "completed": self.completed,
            "abandoned": self.abandoned,
            "expired": self.expired,
            "in_flight": self.in_flight,
            "completeness": round(self.completeness(), 6),
        }
