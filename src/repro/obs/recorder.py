"""Flight recorder: a ring buffer of the last N ticks of trace data.

Debugging a failover by diffing state hashes after the fact (the PR 2
workflow) tells you *that* two runs diverged, not what the cluster was
doing when it happened.  The :class:`FlightRecorder` is a tracer sink
that keeps only the most recent ``last_ticks`` ticks of spans and
structured events; when something goes wrong — a shard crash, a
failover, WAL corruption detected during recovery — the wired-in layer
calls :meth:`dump` and the window around the incident is preserved as a
Chrome trace_event document (viewable in Perfetto), optionally written
to disk.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any

from repro.obs.export import to_chrome_trace
from repro.obs.tracer import FlowPoint, Span, TraceEvent


class FlightRecorder:
    """Tracer sink that retains a sliding window of spans and events.

    Parameters
    ----------
    last_ticks:
        Ring horizon: items whose tick is more than this many ticks
        behind the newest item are evicted (oldest first).
    max_items:
        Hard cap on retained items regardless of tick spread — the
        memory backstop for span-heavy workloads.
    dump_dir:
        When set, every :meth:`dump` also writes
        ``flight-<n>-<reason>.json`` under this directory.
    """

    enabled = True

    def __init__(
        self,
        last_ticks: int = 64,
        max_items: int = 100_000,
        dump_dir: str | Path | None = None,
    ):
        self.last_ticks = last_ticks
        self.max_items = max_items
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._items: deque[Span | TraceEvent | FlowPoint] = deque()
        #: Every dump taken, as ``(reason, chrome_trace_doc)`` pairs.
        self.dumps: list[tuple[str, dict[str, Any]]] = []

    # -- sink interface -----------------------------------------------------------

    def on_span(self, span: Span) -> None:
        """Retain a completed span, evicting expired items."""
        self._push(span)

    def on_event(self, event: TraceEvent) -> None:
        """Retain an instant event, evicting expired items."""
        self._push(event)

    def on_flow(self, flow: FlowPoint) -> None:
        """Retain one end of a causal flow arrow, evicting expired items."""
        self._push(flow)

    def _push(self, item: Span | TraceEvent | FlowPoint) -> None:
        items = self._items
        items.append(item)
        horizon = item.tick - self.last_ticks
        while items and items[0].tick < horizon:
            items.popleft()
        while len(items) > self.max_items:
            items.popleft()

    # -- inspection ---------------------------------------------------------------

    def items(self) -> list[Span | TraceEvent]:
        """Everything currently retained, oldest first."""
        return list(self._items)

    def spans(self) -> list[Span]:
        """Retained spans, oldest first."""
        return [i for i in self._items if isinstance(i, Span)]

    def events(self) -> list[TraceEvent]:
        """Retained instant events, oldest first."""
        return [i for i in self._items if isinstance(i, TraceEvent)]

    def flows(self) -> list[FlowPoint]:
        """Retained flow points, oldest first."""
        return [i for i in self._items if isinstance(i, FlowPoint)]

    def __len__(self) -> int:
        return len(self._items)

    # -- dumping ------------------------------------------------------------------

    def export(self, reason: str = "export", label: str = "repro") -> dict[str, Any]:
        """Render the current window as a Chrome trace document."""
        return to_chrome_trace(
            self.spans(),
            self.events(),
            label=label,
            metadata={"dump_reason": reason, "last_ticks": self.last_ticks},
            flows=self.flows(),
        )

    def dump(self, reason: str, label: str = "repro") -> dict[str, Any]:
        """Preserve the current window as an incident record.

        The document is appended to :attr:`dumps` (so tests and callers
        can inspect it) and, when ``dump_dir`` is set, written to disk.
        Returns the document.
        """
        doc = self.export(reason, label=label)
        self.dumps.append((reason, doc))
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            safe = "".join(
                c if c.isalnum() or c in "-_." else "_" for c in reason
            )
            path = self.dump_dir / f"flight-{len(self.dumps)}-{safe}.json"
            path.write_text(json.dumps(doc), encoding="utf-8")
        return doc

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FlightRecorder(items={len(self._items)}, "
            f"last_ticks={self.last_ticks}, dumps={len(self.dumps)})"
        )
