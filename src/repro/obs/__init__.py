"""Unified observability: metrics, tick-scoped tracing, flight recording.

The stack's one coherent way to see where ticks, bytes, and fsyncs go:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms;
  deterministic under seeds (no wall-clock reads; real durations only
  via an injectable time source such as :class:`ManualTimeSource`).
  ``ShardStats``, ``LinkStats``, and ``FrameBudget`` are thin views over
  registry cells.
* :class:`Tracer` — tick-scoped spans with parent/child links
  (``tick > system > script``, ``wal.append > wal.fsync``,
  ``2pc.prepare``, ``repl.ship``, ``failover``), exported to the Chrome
  ``trace_event`` format for about:tracing / Perfetto via
  :func:`to_chrome_trace`.  Disabled tracing costs one branch per call
  site (:class:`NullSink` fast path).
* :class:`FlightRecorder` — ring buffer of the last N ticks of spans and
  structured events, dumped automatically on shard crash, failover, or
  WAL corruption.

:class:`Observability` bundles the three; runtime constructors accept a
single ``obs`` parameter and fall back to the session default installed
by :func:`set_default_observability`.

On top of them, the causal plane: :class:`TraceContext` headers follow
one request across lanes and processes (:func:`emit_context` /
:func:`accept_context` at every propagation site), the
:class:`RequestTracker` decomposes per-request latency at the gateway,
and the :class:`SLOPlane` holds it to declared objectives — dumping the
flight recorder with the breaching trace when an error budget burns.
"""

from repro.obs.causal import (
    RequestTracker,
    TraceContext,
    accept_context,
    emit_context,
)
from repro.obs.export import (
    events_from_chrome_trace,
    flows_from_chrome_trace,
    match_flows,
    parse_text,
    render_text,
    spans_from_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.hub import (
    DISABLED_OBS,
    DISABLED_TRACER,
    Observability,
    get_default_observability,
    resolve_obs,
    set_default_observability,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    ManualTimeSource,
    MetricsRegistry,
    StatView,
    StatsRow,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLObjective, SLOPlane
from repro.obs.tracer import (
    NOOP_SPAN,
    TICK_STRIDE_US,
    FlowPoint,
    MemorySink,
    NullSink,
    Span,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ManualTimeSource",
    "StatView",
    "StatsRow",
    "DEFAULT_BUCKETS",
    "Tracer",
    "Span",
    "TraceEvent",
    "NullSink",
    "MemorySink",
    "NOOP_SPAN",
    "TICK_STRIDE_US",
    "FlightRecorder",
    "Observability",
    "DISABLED_OBS",
    "DISABLED_TRACER",
    "set_default_observability",
    "get_default_observability",
    "resolve_obs",
    "to_chrome_trace",
    "validate_chrome_trace",
    "spans_from_chrome_trace",
    "events_from_chrome_trace",
    "flows_from_chrome_trace",
    "match_flows",
    "render_text",
    "parse_text",
    "FlowPoint",
    "TraceContext",
    "emit_context",
    "accept_context",
    "RequestTracker",
    "SLObjective",
    "SLOPlane",
]
