"""Entity migration bookkeeping: in-flight handoffs and forwarding.

The handoff protocol itself is three messages (see
:mod:`repro.net.protocol`): the coordinator sends ``HandoffCommand`` to
the source shard, which evicts the entity and ships a
``HandoffRequest`` to the destination, which installs it and reports
``HandoffAck`` back to the coordinator.  This module holds the state
that makes the window between eviction and directory update safe:

* :class:`InFlightHandoff` — the coordinator's record of one move, so
  repartitioning never double-moves an entity mid-flight;
* :class:`ForwardingTable` — the source shard's breadcrumbs.  A message
  addressed to an entity the shard no longer owns is re-sent to the
  shard it was handed to, exactly like mail forwarding; chains collapse
  as each hop rewrites its own entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import StatsRow


class ForwardingStats(StatsRow):
    """Snapshot of one shard's forwarding-table state."""

    COLUMNS = ("entries", "forwards")


@dataclass(frozen=True)
class InFlightHandoff:
    """Coordinator-side record of one entity move."""

    entity: int
    src_shard: int
    dst_shard: int
    started_tick: int


class ForwardingTable:
    """Per-shard map of evicted entities to their new owner."""

    def __init__(self) -> None:
        self._next_hop: dict[int, int] = {}
        self.forwards = 0

    def record_eviction(self, entity: int, dst_shard: int) -> None:
        """Remember where an evicted entity went."""
        self._next_hop[entity] = dst_shard

    def clear(self, entity: int) -> None:
        """Drop the breadcrumb (the entity migrated back here)."""
        self._next_hop.pop(entity, None)

    def next_hop(self, entity: int) -> int | None:
        """Shard to forward an entity-addressed message to, if known."""
        return self._next_hop.get(entity)

    def count_forward(self) -> None:
        """Account one forwarded message."""
        self.forwards += 1

    def stats(self) -> ForwardingStats:
        """Point-in-time :class:`StatsRow` snapshot."""
        return ForwardingStats(
            entries=len(self._next_hop), forwards=self.forwards
        )

    def __len__(self) -> int:
        return len(self._next_hop)
