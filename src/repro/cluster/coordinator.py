"""The cluster coordinator: tick barrier, directory, 2PC, rebalancing.

:class:`ClusterCoordinator` turns N :class:`~repro.cluster.shard.ShardHost`
slices into one logical `GameWorld`:

* **Tick barrier** — :meth:`tick` advances the network one tick, lets
  the coordinator react to delivered votes/acks, then steps every shard
  (inbox processing + one world frame) in shard-id order.  All ordering
  is fixed and all randomness is seeded, so same-seed runs replay to an
  identical :meth:`state_hash`.
* **Directory** — the authoritative entity→shard ownership map.  It may
  briefly lag reality while a handoff is in flight; the shards'
  forwarding tables cover the gap.
* **Cross-shard transactions** — presumed-nothing two-phase commit over
  the simulated network, layered on the shards'
  :class:`~repro.consistency.transactions.TwoPhaseParticipant` hooks.
  Wholly-local transactions take a one-round fast path; cross-shard
  ones pay the extra round trip and hold locks across it — the
  tutorial's "expensive case", now executed rather than estimated.
* **Placement & rebalancing** — every ``repartition_interval`` ticks the
  placement policy proposes a desired assignment (optionally adjusted by
  the :class:`~repro.cluster.placement.DynamicRebalancer`), and the
  coordinator issues handoffs for the diff.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Hashable, Iterable, Mapping

from repro.cluster.migration import InFlightHandoff
from repro.cluster.placement import DynamicRebalancer, PlacementPolicy
from repro.cluster.shard import COORD_ENDPOINT, ShardHost, shard_endpoint
from repro.cluster.stats import ClusterStats
from repro.consistency.transactions import TxnSpec, compute_writes
from repro.core.component import ComponentSchema
from repro.core.entity import EntityAllocator
from repro.errors import ClusterError
from repro.net.protocol import (
    HandoffAck,
    HandoffCommand,
    HandoffComplete,
    SchemaAlter,
    SchemaAlterAck,
    TxnDecision,
    TxnPrepare,
    TxnVote,
)
from repro.net.simnet import LinkConfig, Message, SimNetwork
from repro.obs import (
    MetricsRegistry,
    Observability,
    TraceContext,
    accept_context,
    emit_context,
    resolve_obs,
)


class _TxnRecord:
    """Coordinator-side state of one distributed transaction.

    ``shard_keys`` (participant shard -> its key slice, from dispatch)
    and ``writes_by_shard`` (filled at decision time) exist so a
    failover coordinator can re-derive exactly what each participant
    was told — the raw material for re-applying or aborting a
    transaction interrupted by a primary crash.
    """

    __slots__ = (
        "txn_id", "spec", "all_keys", "covered", "votes", "local",
        "participants", "finished", "committed", "shard_keys",
        "writes_by_shard", "ctx",
    )

    def __init__(
        self, txn_id: int, spec: TxnSpec, all_keys: set, participants: int,
        local: bool, ctx: TraceContext | None = None,
    ):
        self.txn_id = txn_id
        self.spec = spec
        self.all_keys = all_keys
        self.covered: set = set()
        self.votes: list[TxnVote] = []
        self.local = local
        self.participants = participants
        self.finished = False
        self.committed = False
        self.shard_keys: dict[int, tuple] = {}
        self.writes_by_shard: dict[int, dict] = {}
        self.ctx = ctx


class ClusterCoordinator:
    """Runs one `GameWorld` split across deterministic shard hosts."""

    def __init__(
        self,
        shards: int,
        placement: PlacementPolicy,
        schemas: Iterable[ComponentSchema],
        *,
        dt: float = 1.0 / 30.0,
        seed: int = 0,
        link: LinkConfig | None = None,
        rebalancer: DynamicRebalancer | None = None,
        repartition_interval: int = 20,
        obs: Observability | None = None,
        parallel: int | None = None,
    ):
        if shards < 1:
            raise ClusterError("cluster needs at least one shard")
        if repartition_interval < 1:
            raise ClusterError("repartition_interval must be positive")
        if parallel is not None and parallel < 1:
            raise ClusterError("parallel worker count must be positive")
        self.placement = placement
        self.rebalancer = rebalancer
        self.repartition_interval = repartition_interval
        self.dt = dt
        # Explicit obs wins, then the session default, then disabled; a
        # cluster without a shared registry gets a private one so that
        # sequentially-built clusters never merge counters.  The
        # coordinator traces in its own "coord" lane; each shard host
        # forks a further lane from it.
        self.obs = resolve_obs(obs).lane("coord")
        self.metrics = (
            self.obs.metrics if self.obs.metrics is not None else MetricsRegistry()
        )
        self.net = SimNetwork(seed, registry=self.metrics)
        self.net.add_endpoint(COORD_ENDPOINT)
        schemas = list(schemas)
        self._schemas = schemas
        self.shards: list[ShardHost] = [
            self._make_shard(i, schemas) for i in range(shards)
        ]
        link = link or LinkConfig(latency_ticks=1)
        self._link = link
        for host in self.shards:
            self.net.connect(COORD_ENDPOINT, host.endpoint, link)
        for a in self.shards:
            for b in self.shards:
                if a.shard_id < b.shard_id:
                    self.net.connect(a.endpoint, b.endpoint, link)
        self.directory: dict[int, int] = {}
        self._allocator = EntityAllocator()
        self._in_flight: dict[int, InFlightHandoff] = {}
        self._handoff_ctx: dict[int, TraceContext] = {}
        self._txns: dict[int, _TxnRecord] = {}
        self._txn_counter = 0
        self._pending_specs: list[tuple[int, TxnSpec, TraceContext | None]] = []
        self._recent_pairs: set[tuple[int, int]] = set()
        self._prev_positions: dict[int, tuple[float, float]] = {}
        self._prev_tick = 0
        self.tick_count = 0
        # Coordinator tallies live in the registry; the properties below
        # keep the historical attribute API (`coordinator.local_committed`).
        self._c_local_committed = self.metrics.counter("cluster.txn.local_committed")
        self._c_local_aborted = self.metrics.counter("cluster.txn.local_aborted")
        self._c_cross_committed = self.metrics.counter("cluster.txn.cross_committed")
        self._c_cross_aborted = self.metrics.counter("cluster.txn.cross_aborted")
        self._c_migrations = self.metrics.counter("cluster.migrations_done")
        self._c_rebalance_moves = self.metrics.counter("cluster.rebalance_moves")
        # Parallel execution policy: `parallel=N` starts N worker
        # processes lazily on the first tick (so spawns and system
        # registrations made before ticking are inherited by the fork).
        self._parallel_workers = parallel
        self._parallel = None
        # Lease-guarded tick ownership (attach_tick_leases): when a
        # durable lease table governs `tick:<shard>` keys, the
        # coordinator only ticks shards whose lease it holds.
        self._tick_leases: Any = None
        self._tick_lease_ttl = 0
        self._tick_lease_owner = ""
        self.tick_deferrals: dict[int, int] = {}
        # Schema rollout plane: the committed cluster-wide catalog
        # version per component, plus in-flight rollouts awaiting acks.
        self._schema_versions: dict[str, int] = {s.name: 1 for s in schemas}
        self._schema_rollouts: dict[str, dict[str, Any]] = {}
        self._c_schema_rollouts = self.metrics.counter("cluster.schema.rollouts")
        self.obs.register_stats("cluster.migration", self.migration_stats)

    # -- coordinator tallies (registry-backed) ------------------------------------

    @property
    def local_committed(self) -> int:
        """Single-shard transactions that committed."""
        return self._c_local_committed.value

    @local_committed.setter
    def local_committed(self, value: int) -> None:
        self._c_local_committed.value = value

    @property
    def local_aborted(self) -> int:
        """Single-shard transactions that aborted."""
        return self._c_local_aborted.value

    @local_aborted.setter
    def local_aborted(self, value: int) -> None:
        self._c_local_aborted.value = value

    @property
    def cross_committed(self) -> int:
        """Cross-shard transactions that committed."""
        return self._c_cross_committed.value

    @cross_committed.setter
    def cross_committed(self, value: int) -> None:
        self._c_cross_committed.value = value

    @property
    def cross_aborted(self) -> int:
        """Cross-shard transactions that aborted."""
        return self._c_cross_aborted.value

    @cross_aborted.setter
    def cross_aborted(self, value: int) -> None:
        self._c_cross_aborted.value = value

    @property
    def migrations_done(self) -> int:
        """Handoffs fully acknowledged by the directory."""
        return self._c_migrations.value

    @migrations_done.setter
    def migrations_done(self, value: int) -> None:
        self._c_migrations.value = value

    @property
    def rebalance_moves(self) -> int:
        """Entities the rebalancer relocated beyond the base placement."""
        return self._c_rebalance_moves.value

    @rebalance_moves.setter
    def rebalance_moves(self, value: int) -> None:
        self._c_rebalance_moves.value = value

    # -- topology / setup ---------------------------------------------------------

    def _make_shard(self, shard_id: int, schemas: list[ComponentSchema]) -> ShardHost:
        """Shard factory; the replicated coordinator overrides this."""
        return ShardHost(shard_id, self.net, schemas, self.dt, obs=self.obs)

    def shard(self, shard_id: int) -> ShardHost:
        """The shard host with the given id."""
        return self.shards[shard_id]

    @property
    def shard_count(self) -> int:
        """Number of shards in the cluster."""
        return len(self.shards)

    def add_per_entity_system(
        self,
        name: str,
        components: Iterable[str],
        fn: Callable[[Any, int, float], None],
        priority: int = 100,
        interval: int = 1,
    ) -> None:
        """Register the same tuple-at-a-time system on every shard world."""
        components = tuple(components)
        for host in self.shards:
            host.world.add_per_entity_system(name, components, fn, priority, interval)

    def add_system(self, system: Any, priority: int | None = None) -> None:
        """Register a system on every shard world.

        Accepts a ``@system``-decorated function (shared across shards —
        it must be stateless) or a zero-argument factory returning a
        fresh :class:`~repro.core.systems.System` per shard.
        """
        from repro.core.systems import System

        if isinstance(system, System):
            raise ClusterError(
                "pass a decorated function or a factory, not a System "
                "instance — each shard world needs its own"
            )
        decorated = hasattr(system, "__system_name__")
        for host in self.shards:
            instance = system if decorated else system()
            host.world.add_system(instance, priority=priority)

    def add_batch_system(
        self,
        name: str,
        reads: Iterable[str],
        fn: Callable[..., Any],
        priority: int = 100,
        interval: int = 1,
        writes: Iterable[str] | None = None,
        elementwise: bool = False,
    ) -> None:
        """Register the same set-at-a-time system on every shard world.

        ``fn(world, entity_ids, columns, dt)`` runs once per shard frame
        over that shard's whole entity set — the columnar formulation of
        what :meth:`add_per_entity_system` does tuple-at-a-time.  Under a
        ``parallel=`` policy the kernel executes inside the worker
        processes against the shared-memory columns, which is where the
        cluster's batch speedup comes from.
        """
        reads = tuple(reads)
        writes = tuple(writes) if writes is not None else None
        for host in self.shards:
            host.world.add_batch_system(
                name, reads, fn, priority=priority, interval=interval,
                writes=writes, elementwise=elementwise,
            )

    def add_script_system(self, name: str, source: str, **kwargs: Any) -> None:
        """Compile and register the same GSL script on every shard world."""
        from repro.scripting.script_system import add_script_system

        for host in self.shards:
            add_script_system(host.world, name, source, **kwargs)

    # -- entity plane -------------------------------------------------------------

    def spawn(self, components: Mapping[str, Mapping[str, Any]]) -> int:
        """Spawn an entity, placed by the policy (control plane, no wire)."""
        entity = self._allocator.allocate()
        pos = components.get("Position", {})
        x, y = float(pos.get("x", 0.0)), float(pos.get("y", 0.0))
        shard_id = self.placement.initial_shard(entity, x, y)
        if not 0 <= shard_id < len(self.shards):
            raise ClusterError(f"placement returned bad shard {shard_id}")
        if self._parallel is not None:
            # The worker owns the live world; mirror ownership locally so
            # check_invariants and the directory stay accurate.
            self._parallel.install(shard_id, entity, components)
            host = self.shards[shard_id]
            host.owned.add(entity)
            host.stats.entities_owned = len(host.owned)
        else:
            self.shards[shard_id].install_entity(entity, components)
        self.directory[entity] = shard_id
        return entity

    def owner_of(self, entity: int) -> int:
        """Directory lookup: which shard owns the entity."""
        try:
            return self.directory[entity]
        except KeyError:
            raise ClusterError(f"entity {entity} is not in the directory") from None

    @property
    def entity_count(self) -> int:
        """Entities tracked by the directory."""
        return len(self.directory)

    def positions(self) -> dict[int, tuple[float, float]]:
        """Global Position snapshot gathered from every shard."""
        if self._parallel is not None:
            return self._parallel.positions()
        out: dict[int, tuple[float, float]] = {}
        for host in self.shards:
            if "Position" not in host.world.component_names():
                continue
            for eid, row in host.world.table("Position").rows():
                out[eid] = (row["x"], row["y"])
        return out

    def migrate(
        self, entity: int, dst_shard: int,
        ctx: TraceContext | None = None,
    ) -> bool:
        """Begin a handoff; returns False when one is already in flight.

        ``ctx`` is the causal context of whatever requested the move; it
        rides the whole command → request → ack → complete chain.
        """
        if not 0 <= dst_shard < len(self.shards):
            raise ClusterError(f"bad destination shard {dst_shard}")
        if entity in self._in_flight:
            return False
        src = self.owner_of(entity)
        if src == dst_shard:
            return False
        self._in_flight[entity] = InFlightHandoff(
            entity, src, dst_shard, self.net.now
        )
        if ctx is not None:
            self._handoff_ctx[entity] = ctx
        self._send(
            shard_endpoint(src),
            HandoffCommand(entity=entity, dst_shard=dst_shard, tick=self.net.now),
            ctx=ctx,
        )
        return True

    # -- transaction plane --------------------------------------------------------

    def submit(self, spec: TxnSpec, ctx: TraceContext | None = None) -> int:
        """Queue a transaction; it is dispatched on the next tick.

        ``ctx`` (optional) is the causal context of the request that
        produced the transaction — it rides the prepare and decision
        messages so the 2PC rounds join the request's trace.
        """
        self._txn_counter += 1
        txn_id = self._txn_counter
        self._pending_specs.append((txn_id, spec, ctx))
        return txn_id

    def txn_outcome(self, txn_id: int) -> bool | None:
        """True/False once committed/aborted, None while undecided."""
        record = self._txns.get(txn_id)
        if record is None or not record.finished:
            return None
        return record.committed

    def _dispatch_pending(self) -> None:
        for txn_id, spec, ctx in self._pending_specs:
            self._dispatch(txn_id, spec, ctx)
        self._pending_specs.clear()

    def _dispatch(
        self, txn_id: int, spec: TxnSpec, ctx: TraceContext | None = None
    ) -> None:
        by_shard: dict[int, list[tuple[str, Hashable]]] = {}
        for op in spec.ops:
            entity = op.key[0]
            shard_id = self.owner_of(entity)
            by_shard.setdefault(shard_id, []).append((op.kind, op.key))
        all_keys = {op.key for op in spec.ops}
        local = len(by_shard) == 1
        record = _TxnRecord(txn_id, spec, all_keys, len(by_shard), local, ctx)
        self._txns[txn_id] = record
        # Stamp the prepare with the coordinator's expected catalog
        # version for every component it touches: a participant that has
        # already applied (or not yet applied) a rolling alter votes
        # abort rather than prepare writes against a different shape.
        touched = sorted({
            op.key[1] for op in spec.ops
            if len(op.key) >= 2 and isinstance(op.key[1], str)
        })
        stamp = tuple(
            (c, self._effective_schema_version(c))
            for c in touched
            if c in self._schema_versions
        )
        for shard_id in sorted(by_shard):
            keyed_ops = tuple(by_shard[shard_id])
            record.shard_keys[shard_id] = keyed_ops
            prepare = TxnPrepare(
                txn_id=txn_id,
                keyed_ops=keyed_ops,
                tick=self.net.now,
                local=local,
                ops=tuple(spec.ops) if local else (),
                schema_versions=stamp,
            )
            self._send(shard_endpoint(shard_id), prepare, ctx=ctx)

    def _on_vote(self, vote: TxnVote) -> None:
        record = self._txns.get(vote.txn_id)
        if record is None or record.finished:
            # A commit-vote arriving after the record finished aborted
            # (failover can abort a txn whose votes are still on the
            # wire) would leave that participant's locks held forever;
            # answer it with an abort decision so they release.
            if (
                record is not None
                and not record.committed
                and vote.commit
                and not vote.applied
            ):
                self._send(
                    shard_endpoint(vote.shard),
                    TxnDecision(
                        txn_id=vote.txn_id,
                        commit=False,
                        writes={},
                        tick=self.net.now,
                    ),
                    ctx=record.ctx,
                )
            return
        record.votes.append(vote)
        record.covered |= set(vote.keys)
        if vote.applied:
            # Single-shard fast path: already executed (or refused) there.
            self._finish(record, committed=vote.commit)
            return
        if record.covered >= record.all_keys:
            self._decide(record)

    def _decide(self, record: _TxnRecord) -> None:
        commit = all(v.commit for v in record.votes)
        writes: dict[Hashable, Any] = {}
        if commit:
            merged: dict[Hashable, Any] = {}
            for v in record.votes:
                merged.update(v.reads)
            writes = compute_writes(record.spec.ops, merged)
        # One decision per shard: forwarding can make a shard vote twice
        # (two key-slices of the same txn), and a duplicate commit would
        # find no prepared state the second time.
        keys_by_shard: dict[int, set] = {}
        for v in record.votes:
            if not v.commit:
                continue  # refusing shards released their locks already
            keys_by_shard.setdefault(v.shard, set()).update(v.keys)
        for shard_id in sorted(keys_by_shard):
            slice_writes = {
                k: writes[k] for k in keys_by_shard[shard_id] if k in writes
            }
            if commit:
                record.writes_by_shard[shard_id] = slice_writes
            self._send(
                shard_endpoint(shard_id),
                TxnDecision(
                    txn_id=record.txn_id,
                    commit=commit,
                    writes=slice_writes if commit else {},
                    tick=self.net.now,
                ),
                ctx=record.ctx,
            )
        self._finish(record, committed=commit)

    def _finish(self, record: _TxnRecord, committed: bool) -> None:
        record.finished = True
        record.committed = committed
        if record.local:
            if committed:
                self.local_committed += 1
            else:
                self.local_aborted += 1
        elif committed:
            self.cross_committed += 1
        else:
            self.cross_aborted += 1

    # -- schema rollout plane -----------------------------------------------------

    def alter(
        self,
        component: str,
        steps: Iterable[Any],
        *,
        batch_rows: int | None = None,
    ) -> int:
        """Roll a schema alter across every shard; returns the target version.

        The coordinator serialises the steps (callable
        ``TransformColumn`` steps are rejected — a rollout must be
        replayable from records), broadcasts a
        :class:`~repro.net.protocol.SchemaAlter` to all shards, and
        tracks acks.  Each shard begins its own incremental backfill on
        receipt; the cluster-wide version is considered committed once
        every shard has acked, which :meth:`quiesce` waits for.
        """
        from repro.schema.catalog import DEFAULT_BATCH_ROWS
        from repro.schema.steps import steps_to_records

        if self._parallel is not None or self._parallel_workers is not None:
            raise ClusterError(
                "schema rollouts and parallel execution are mutually exclusive"
            )
        if component not in self._schema_versions:
            raise ClusterError(f"unknown component {component!r}")
        if component in self._schema_rollouts:
            raise ClusterError(f"{component}: a schema rollout is already in flight")
        steps = tuple(steps)
        if not steps:
            raise ClusterError("alter needs at least one step")
        records = steps_to_records(steps)  # raises SchemaError on Transform
        batch = DEFAULT_BATCH_ROWS if batch_rows is None else int(batch_rows)
        to_version = self._schema_versions[component] + 1
        self._schema_rollouts[component] = {
            "to": to_version,
            "pending": {host.shard_id for host in self.shards},
            "records": records,
            "batch": batch,
        }
        msg = SchemaAlter(
            component=component,
            steps=records,
            to_version=to_version,
            batch_rows=batch,
            tick=self.net.now,
        )
        for host in self.shards:
            self._send(host.endpoint, msg)
        return to_version

    def schema_version_of(self, component: str) -> int:
        """The committed (fully-acked) cluster-wide catalog version."""
        try:
            return self._schema_versions[component]
        except KeyError:
            raise ClusterError(f"unknown component {component!r}") from None

    def _effective_schema_version(self, component: str) -> int:
        """Committed version, or the rollout target while one is in flight."""
        rollout = self._schema_rollouts.get(component)
        if rollout is not None:
            return rollout["to"]
        return self._schema_versions.get(component, 1)

    @property
    def schema_rollouts_in_flight(self) -> int:
        """Alters broadcast but not yet acked by every shard."""
        return len(self._schema_rollouts)

    def _on_schema_ack(self, ack: SchemaAlterAck) -> None:
        rollout = self._schema_rollouts.get(ack.component)
        if rollout is None or ack.to_version != rollout["to"]:
            return  # stale ack from a finished or superseded rollout
        rollout["pending"].discard(ack.shard)
        if not rollout["pending"]:
            del self._schema_rollouts[ack.component]
            self._schema_versions[ack.component] = rollout["to"]
            self._c_schema_rollouts.inc()

    def _reconcile_schema(self, shard_id: int, host: ShardHost) -> None:
        """Re-drive in-flight rollouts at a freshly promoted shard.

        The promoted replica's catalog was caught up from the failed
        primary's journal, so it usually already holds the target
        version — treat that as the ack the dead primary never sent.
        Otherwise re-send the stored :class:`SchemaAlter`; the handler
        is idempotent.
        """
        for component, rollout in list(self._schema_rollouts.items()):
            if shard_id not in rollout["pending"]:
                continue
            if host.world.catalog.version_of(component) >= rollout["to"]:
                self._on_schema_ack(SchemaAlterAck(
                    shard=shard_id,
                    component=component,
                    to_version=rollout["to"],
                    tick=self.net.now,
                ))
            else:
                self._send(host.endpoint, SchemaAlter(
                    component=component,
                    steps=rollout["records"],
                    to_version=rollout["to"],
                    batch_rows=rollout["batch"],
                    tick=self.net.now,
                ))

    # -- interaction feed ---------------------------------------------------------

    def report_interactions(self, pairs: Iterable[tuple[int, int]]) -> None:
        """Feed observed interaction pairs (drives rebalancer metrics)."""
        self._recent_pairs.update(pairs)

    # -- the global tick ----------------------------------------------------------

    def tick(self) -> int:
        """One global barrier tick; returns the new tick number."""
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._tick_impl()
        tracer.begin_tick(self.tick_count + 1)
        with tracer.span("cluster.tick", cat="cluster", tick=self.tick_count + 1):
            return self._tick_impl()

    def _tick_impl(self) -> int:
        self.net.advance(1)
        for msg in self.net.receive(COORD_ENDPOINT):
            self._on_coord_message(msg)
        self._dispatch_pending()
        self._step_shards()
        self.tick_count += 1
        self._maybe_repartition()
        return self.tick_count

    def _on_coord_message(self, msg: Message) -> None:
        """Handle one message delivered to the coordinator endpoint."""
        payload = msg.payload
        if msg.ctx is not None:
            accept_context(
                self.obs.tracer, msg.ctx,
                name=f"net.{type(payload).__name__}",
            )
        if isinstance(payload, TxnVote):
            self._on_vote(payload)
        elif isinstance(payload, HandoffAck):
            self._on_handoff_ack(payload)
        elif isinstance(payload, SchemaAlterAck):
            self._on_schema_ack(payload)
        else:
            raise ClusterError(f"coordinator: unexpected message {msg!r}")

    def _step_shards(self) -> None:
        """Step every shard host (inbox + one world frame) in id order.

        The replicated coordinator overrides this to weave in fault
        injection, log shipping, replica apply, and failure detection.
        Under a ``parallel=`` policy the step fans out to the worker
        processes instead (same message order — see
        :mod:`repro.parallel.procpool`).
        """
        if self._parallel is None and self._parallel_workers is not None:
            self.start_parallel(self._parallel_workers)
        if self._parallel is not None:
            self._parallel.step()
            return
        for host in self.shards:
            host.process_inbox(self.net.receive(host.endpoint))
            if self._may_tick(host.shard_id):
                host.tick()

    # -- lease-guarded tick ownership ---------------------------------------------

    def attach_tick_leases(
        self, leases: Any, ttl: int = 8, owner: str = "coordinator"
    ) -> None:
        """Guard each shard's tick behind a durable ``tick:<shard>`` lease.

        ``leases`` is a :class:`~repro.durable.leases.LeaseTable` (duck
        typed; the cluster layer never imports the durable package).
        Before ticking shard *s* the coordinator acquires ``tick:s`` for
        ``owner``: a live lease held by a *worker* defers the shard's
        tick (the worker owns that turn — deferrals are counted in
        :attr:`tick_deferrals`), while an expired one is reclaimed under
        a fresh fencing token — so a crashed worker's in-flight tick is
        detected and taken over within ``ttl`` ticks, and the token
        fences the worker out if it was merely paused: no double-applied
        tick.
        """
        if ttl < 1:
            raise ClusterError("tick-lease ttl must be positive")
        if self._parallel is not None or self._parallel_workers is not None:
            raise ClusterError(
                "tick leases and parallel execution are mutually exclusive"
            )
        self._tick_leases = leases
        self._tick_lease_ttl = ttl
        self._tick_lease_owner = owner
        self.tick_deferrals = {host.shard_id: 0 for host in self.shards}

    def _may_tick(self, shard_id: int) -> bool:
        """Whether this coordinator owns shard's tick for this round."""
        if self._tick_leases is None:
            return True
        from repro.errors import LeaseHeldError

        try:
            self._tick_leases.acquire(
                f"tick:{shard_id}",
                self._tick_lease_owner,
                self._tick_lease_ttl,
                self.tick_count + 1,
            )
        except LeaseHeldError:
            self.tick_deferrals[shard_id] += 1
            return False
        return True

    # -- parallel execution policy -----------------------------------------------

    @property
    def parallel_active(self) -> bool:
        """Whether shard ticks currently run on worker processes."""
        return self._parallel is not None

    def start_parallel(
        self, workers: int | None = None, *, shm_headroom: int = 1024
    ) -> Any:
        """Fork shard workers and route subsequent ticks through them.

        ``shm_headroom`` sizes the shared-memory column segments beyond
        the current entity population: entities spawned while parallel
        fit without spilling as long as their count stays under it.
        """
        if self._parallel is not None:
            return self._parallel
        if type(self)._step_shards is not ClusterCoordinator._step_shards:
            raise ClusterError(
                "parallel execution requires the base shard step "
                "(replicated clusters override it)"
            )
        from repro.parallel.procpool import ProcessShardExecutor

        self._parallel = ProcessShardExecutor(
            self,
            workers if workers is not None else (self._parallel_workers or 2),
            shm_headroom=shm_headroom,
        )
        return self._parallel

    def stop_parallel(self, sync: bool = True) -> None:
        """Stop the shard workers; ``sync=True`` pulls their state back."""
        if self._parallel is None:
            return
        executor, self._parallel = self._parallel, None
        self._parallel_workers = None
        executor.stop(sync=sync)

    def _maybe_repartition(self) -> None:
        """Repartition when the interval elapses (hook for subclasses)."""
        if self.tick_count % self.repartition_interval == 0:
            self._repartition()

    def run(self, ticks: int) -> None:
        """Advance the whole cluster ``ticks`` global ticks."""
        for _ in range(ticks):
            self.tick()

    def _on_handoff_ack(self, ack: HandoffAck) -> None:
        self.directory[ack.entity] = ack.dst_shard
        self._in_flight.pop(ack.entity, None)
        self.migrations_done += 1
        # The directory now names the new owner: tell the source it may
        # drop its retained copy of the evicted entity.
        self._send(
            shard_endpoint(ack.src_shard),
            HandoffComplete(entity=ack.entity, tick=self.net.now),
            ctx=self._handoff_ctx.pop(ack.entity, None),
        )

    # -- repartitioning -----------------------------------------------------------

    def _estimate_velocities(
        self, positions: Mapping[int, tuple[float, float]]
    ) -> dict[int, tuple[float, float]]:
        elapsed = (self.tick_count - self._prev_tick) * self.dt
        if not self._prev_positions or elapsed <= 0:
            return {}
        out = {}
        for eid, (x, y) in positions.items():
            prev = self._prev_positions.get(eid)
            if prev is not None:
                out[eid] = ((x - prev[0]) / elapsed, (y - prev[1]) / elapsed)
        return out

    def _repartition(self) -> None:
        positions = self.positions()
        velocities = self._estimate_velocities(positions)
        desired = self.placement.desired_assignment(
            positions, velocities, dict(self.directory)
        )
        if self.rebalancer is not None:
            desired, moves = self.rebalancer.rebalance(
                desired, range(len(self.shards)), self._recent_pairs
            )
            self.rebalance_moves += moves
        for entity in sorted(desired):
            target = desired[entity]
            if entity in self._in_flight:
                continue
            if self.directory.get(entity) != target:
                self.migrate(entity, target)
        self._prev_positions = positions
        self._prev_tick = self.tick_count
        self._recent_pairs.clear()

    # -- observability ------------------------------------------------------------

    def _send(
        self, dst: str, payload: Any, ctx: TraceContext | None = None
    ) -> None:
        tracer = self.obs.tracer
        if tracer.enabled or ctx is not None:
            ctx = emit_context(
                tracer, carry=ctx, name=f"net.{type(payload).__name__}"
            )
        self.net.send(COORD_ENDPOINT, dst, payload, payload.wire_size(), ctx)

    def migration_stats(self) -> "StatsRow":
        """Handoff/rebalance counters as a :class:`StatsRow` snapshot."""
        from repro.obs.metrics import StatsRow

        return StatsRow(
            ("migrations_done", "in_flight", "rebalance_moves",
             "deferred", "retained"),
            migrations_done=self.migrations_done,
            in_flight=len(self._in_flight),
            rebalance_moves=self.rebalance_moves,
            deferred=(
                sum(self._parallel.deferred_counts.values())
                if self._parallel is not None
                else sum(host.deferred_handoffs for host in self.shards)
            ),
            retained=(
                sum(self._parallel.retained_counts.values())
                if self._parallel is not None
                else sum(host.retained_evictions for host in self.shards)
            ),
        )

    def stats(self) -> ClusterStats:
        """Assemble the cluster-wide observability record."""
        return ClusterStats(
            ticks=self.tick_count,
            shards=[host.stats for host in self.shards],
            local_committed=self.local_committed,
            local_aborted=self.local_aborted,
            cross_committed=self.cross_committed,
            cross_aborted=self.cross_aborted,
            migrations=self.migrations_done,
            rebalance_moves=self.rebalance_moves,
        )

    def state_hash(self) -> str:
        """Deterministic digest of every shard's world plus the directory.

        Two same-seed runs of the same workload must produce identical
        digests — the cluster's replay guarantee.
        """
        digest = hashlib.sha256()
        shard_hashes = (
            self._parallel.state_hashes() if self._parallel is not None else None
        )
        for host in self.shards:
            digest.update(f"shard:{host.shard_id}\n".encode())
            if shard_hashes is not None:
                digest.update(shard_hashes[host.shard_id].encode())
            else:
                digest.update(host.world.state_hash().encode())
        for entity in sorted(self.directory):
            digest.update(f"\nd:{entity}->{self.directory[entity]}".encode())
        return digest.hexdigest()

    def check_invariants(self) -> None:
        """Assert cluster ownership invariants (used heavily by tests).

        Every entity is owned by at most one shard; entities not in
        flight are owned by exactly the shard the directory names.
        """
        seen: dict[int, int] = {}
        for host in self.shards:
            for entity in host.owned:
                if entity in seen:
                    raise ClusterError(
                        f"entity {entity} owned by shards {seen[entity]} "
                        f"and {host.shard_id}"
                    )
                seen[entity] = host.shard_id
        for entity, shard_id in self.directory.items():
            if entity in self._in_flight:
                continue
            owner = seen.get(entity)
            if owner is None:
                raise ClusterError(
                    f"entity {entity} (directory: shard {shard_id}) "
                    f"is owned by no shard and not in flight"
                )
        extras = set(seen) - set(self.directory)
        if extras:
            raise ClusterError(f"shards own undirectoried entities: {extras}")

    @property
    def in_flight_handoffs(self) -> int:
        """Handoffs currently between eviction and directory update."""
        return len(self._in_flight)

    def _quiet(self) -> bool:
        """Whether the control plane has fully settled.

        The replicated coordinator overrides this: steady-state log
        shipping keeps the network permanently busy, so it cannot wait
        for an empty wire.
        """
        if self._parallel is not None:
            deferred = any(self._parallel.deferred_counts.values())
        else:
            deferred = any(host.deferred_handoffs for host in self.shards)
        return (
            not self._in_flight
            and not self._pending_specs
            and not self.net.in_flight_count()
            and all(r.finished for r in self._txns.values())
            and not deferred
            and not self._schema_rollouts
        )

    def quiesce(self, max_ticks: int = 64) -> None:
        """Tick until no handoffs or undecided transactions remain."""
        for _ in range(max_ticks):
            if self._quiet():
                return
            self.tick()
        raise ClusterError("cluster failed to quiesce")

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ClusterCoordinator(shards={len(self.shards)}, "
            f"entities={len(self.directory)}, tick={self.tick_count})"
        )
