"""One shard of a sharded world: a `GameWorld` slice plus protocol glue.

A :class:`ShardHost` owns a subset of the cluster's entities inside its
own :class:`~repro.core.world.GameWorld`, runs that world's systems on
every global tick, and speaks the cluster protocol over the simulated
network: it evicts/installs entities for the handoff protocol, forwards
messages addressed to entities it handed away, and acts as a two-phase
commit participant by exposing its component tables as the keyed store
behind :class:`~repro.consistency.transactions.TwoPhaseParticipant`.

Transaction keys are ``(entity_id, component, field)`` tuples, the same
grain the lock-manager docs name, so a distributed transaction locks
exactly the fields it touches inside each shard's world.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

from repro.cluster.migration import ForwardingTable
from repro.cluster.stats import ShardStats
from repro.consistency.transactions import TwoPhaseParticipant
from repro.core.component import ComponentSchema
from repro.core.world import GameWorld
from repro.errors import ClusterError
from repro.net.protocol import (
    HandoffAck,
    HandoffCommand,
    HandoffComplete,
    HandoffRequest,
    HandoffResend,
    SchemaAlter,
    SchemaAlterAck,
    TxnDecision,
    TxnPrepare,
    TxnVote,
)
from repro.schema.steps import steps_from_records
from repro.net.simnet import Message, SimNetwork
from repro.obs import (
    Observability,
    TraceContext,
    accept_context,
    emit_context,
    resolve_obs,
)

#: Network endpoint name of a shard / the coordinator.
COORD_ENDPOINT = "coord"


def shard_endpoint(shard_id: int) -> str:
    """Network endpoint name for a shard id."""
    return f"shard:{shard_id}"


class _WorldStore:
    """Adapter exposing world component fields as a keyed store.

    Keys are ``(entity_id, component, field)``; this is the store the
    2PC participant reads and writes, so commit lands directly in the
    shard's columnar tables (and through them, indexes, aggregates, and
    persistence hooks).
    """

    def __init__(self, world: GameWorld):
        self.world = world

    def get(self, key: Hashable) -> Any:
        entity, component, fieldname = key
        return self.world.get_field(entity, component, fieldname)

    def put(self, key: Hashable, value: Any) -> None:
        entity, component, fieldname = key
        self.world.set(entity, component, **{fieldname: value})


class ShardHost:
    """Hosts one shard's world slice and speaks the cluster protocol."""

    def __init__(
        self,
        shard_id: int,
        net: SimNetwork,
        schemas: Iterable[ComponentSchema],
        dt: float = 1.0 / 30.0,
        *,
        obs: Observability | None = None,
    ):
        self.shard_id = shard_id
        self.endpoint = shard_endpoint(shard_id)
        self.net = net
        # Each shard traces in its own (node, shard) timestamp lane so
        # merged cluster traces keep per-host timelines apart.
        self.obs = resolve_obs(obs).lane(self.endpoint)
        self.world = GameWorld(dt, obs=self.obs)
        for schema in schemas:
            self.world.catalog.define(schema)
        self.owned: set[int] = set()
        self.forwarding = ForwardingTable()
        self.participant = TwoPhaseParticipant(_WorldStore(self.world))
        self.stats = ShardStats(shard_id, registry=net.metrics)
        self._deferred_handoffs: list[tuple[HandoffCommand, TraceContext | None]] = []
        self._retained_evictions: dict[int, HandoffRequest] = {}
        #: (component, to_version) alters begun but not yet acked to the
        #: coordinator; acked once the local backfill commits.
        self._pending_schema_acks: list[tuple[str, int]] = []
        #: handoff payloads stamped with a catalog version this shard has
        #: not reached yet — installed once the local alter catches up.
        self._deferred_installs: list[tuple[HandoffRequest, TraceContext | None]] = []
        net.add_endpoint(self.endpoint)

    # -- ownership ----------------------------------------------------------------

    def owns(self, entity: int) -> bool:
        """Whether this shard currently owns the entity."""
        return entity in self.owned

    def install_entity(
        self, entity: int, components: Mapping[str, Mapping[str, Any]]
    ) -> None:
        """Install an entity (spawn-time placement or inbound handoff)."""
        if entity in self.owned:
            raise ClusterError(
                f"shard {self.shard_id} already owns entity {entity}"
            )
        self.world.restore_entity(entity, components)
        self.owned.add(entity)
        self.forwarding.clear(entity)
        self.stats.entities_owned = len(self.owned)

    def evict_entity(self, entity: int, dst_shard: int) -> dict[str, dict[str, Any]]:
        """Serialize an entity out of this shard's tables and drop it."""
        if entity not in self.owned:
            raise ClusterError(
                f"shard {self.shard_id} does not own entity {entity}"
            )
        payload = self.world.snapshot_entity(entity)
        self.world.destroy(entity)
        self.owned.discard(entity)
        self.forwarding.record_eviction(entity, dst_shard)
        self.stats.entities_owned = len(self.owned)
        return payload

    # -- message plane ------------------------------------------------------------

    def send(
        self, dst: str, payload: Any, size: int | None = None,
        ctx: TraceContext | None = None,
    ) -> None:
        """Send one protocol message, billing wire size and counters.

        ``ctx`` continues a causal trace across the hop (a fresh flow
        arrow is opened in this shard's lane; the carried trace_id
        propagates even with tracing off).
        """
        size = size if size is not None else payload.wire_size()
        tracer = self.obs.tracer
        if tracer.enabled or ctx is not None:
            ctx = emit_context(
                tracer, carry=ctx, name=f"net.{type(payload).__name__}"
            )
        self.net.send(self.endpoint, dst, payload, size, ctx)
        self.stats.cross_shard_messages += 1

    def process_inbox(self, messages: Iterable[Message]) -> None:
        """Handle this tick's delivered protocol messages in order."""
        for msg in messages:
            payload = msg.payload
            ctx = msg.ctx
            if ctx is not None:
                accept_context(
                    self.obs.tracer, ctx,
                    name=f"net.{type(payload).__name__}",
                )
            if isinstance(payload, HandoffCommand):
                self._on_handoff_command(payload, ctx)
            elif isinstance(payload, HandoffRequest):
                self._on_handoff_request(payload, ctx)
            elif isinstance(payload, HandoffComplete):
                self._retained_evictions.pop(payload.entity, None)
            elif isinstance(payload, HandoffResend):
                self._on_handoff_resend(payload, ctx)
            elif isinstance(payload, TxnPrepare):
                self._on_prepare(payload, ctx)
            elif isinstance(payload, TxnDecision):
                self._on_decision(payload)
            elif isinstance(payload, SchemaAlter):
                self._on_schema_alter(payload)
            else:
                raise ClusterError(
                    f"shard {self.shard_id}: unexpected message {msg!r}"
                )

    def tick(self) -> None:
        """Advance this shard's world one frame."""
        self._retry_deferred_handoffs()
        self._retry_deferred_installs()
        self.world.tick()
        self.stats.ticks += 1
        self._flush_schema_acks()

    @property
    def deferred_handoffs(self) -> int:
        """Handoffs waiting for prepared transactions to release locks."""
        return len(self._deferred_handoffs)

    # -- handoff protocol -------------------------------------------------------

    def _entity_lock_held(self, entity: int) -> bool:
        """Whether a prepared transaction has locks on the entity."""
        return any(key[0] == entity for key in self.participant.prepared_keys())

    def _retry_deferred_handoffs(self) -> None:
        deferred, self._deferred_handoffs = self._deferred_handoffs, []
        for cmd, ctx in deferred:
            self._on_handoff_command(cmd, ctx)

    def _on_handoff_command(
        self, cmd: HandoffCommand, ctx: TraceContext | None = None
    ) -> None:
        """Coordinator told us to hand an entity to another shard.

        Eviction waits while a prepared transaction holds locks on the
        entity — shipping the state away would orphan the commit — and
        retries on the next tick, after decisions have been processed.
        The causal context survives the deferral and rides the request.
        """
        if self._entity_lock_held(cmd.entity):
            self._deferred_handoffs.append((cmd, ctx))
            return
        components = self.evict_entity(cmd.entity, cmd.dst_shard)
        self.stats.migrations_out += 1
        request = HandoffRequest(
            entity=cmd.entity,
            components=components,
            src_shard=self.shard_id,
            dst_shard=cmd.dst_shard,
            tick=self.net.now,
            schema_versions=self._stamp_versions(components),
        )
        # Retain the payload until the coordinator confirms the handoff
        # is durable (HandoffComplete); a crash of the destination while
        # the request is in flight can then be repaired by re-sending.
        self._retained_evictions[cmd.entity] = request
        self.send(shard_endpoint(cmd.dst_shard), request, ctx=ctx)

    def _on_handoff_resend(
        self, cmd: HandoffResend, ctx: TraceContext | None = None
    ) -> None:
        """Failover repair: re-ship a retained eviction to the new owner."""
        retained = self._retained_evictions.get(cmd.entity)
        if retained is None:
            raise ClusterError(
                f"shard {self.shard_id}: no retained eviction for "
                f"entity {cmd.entity}"
            )
        request = HandoffRequest(
            entity=retained.entity,
            components=retained.components,
            src_shard=self.shard_id,
            dst_shard=cmd.dst_shard,
            tick=self.net.now,
            # Keep the original stamp: the retained rows were serialized
            # at the versions of the original eviction, not at whatever
            # this shard's catalog has advanced to since.
            schema_versions=retained.schema_versions,
        )
        self._retained_evictions[cmd.entity] = request
        self.send(shard_endpoint(cmd.dst_shard), request, ctx=ctx)

    @property
    def retained_evictions(self) -> int:
        """Eviction payloads held until the coordinator confirms them."""
        return len(self._retained_evictions)

    def _on_handoff_request(
        self, req: HandoffRequest, ctx: TraceContext | None = None
    ) -> None:
        """A peer shipped us an entity: install it and tell the coordinator.

        Version-stamped payloads make mixed-version ticks safe: rows
        shipped at an older catalog version are upgraded through the
        recorded alter steps before install, and rows from a *newer*
        version than this shard has reached are deferred until its own
        backfill catches up (at most the rollout window, ~1 tick).
        """
        stamps = dict(req.schema_versions)
        if stamps:
            catalog = self.world.catalog
            behind = [
                comp
                for comp, version in stamps.items()
                if version > catalog.effective_version(comp)
            ]
            if behind:
                self._deferred_installs.append((req, ctx))
                return
            upgraded = {}
            for comp, row in req.components.items():
                from_v = stamps.get(comp, catalog.effective_version(comp))
                upgraded[comp] = catalog.upgrade_payload(comp, row, from_v)
            req = HandoffRequest(
                entity=req.entity,
                components=upgraded,
                src_shard=req.src_shard,
                dst_shard=req.dst_shard,
                tick=req.tick,
                schema_versions=req.schema_versions,
            )
        tracer = self.obs.tracer
        if tracer.enabled:
            with tracer.span(
                "handoff.install", cat="cluster",
                entity=req.entity, src=req.src_shard,
            ):
                self.install_entity(req.entity, req.components)
        else:
            self.install_entity(req.entity, req.components)
        self.stats.migrations_in += 1
        self.send(
            COORD_ENDPOINT,
            HandoffAck(
                entity=req.entity,
                src_shard=req.src_shard,
                dst_shard=self.shard_id,
                tick=self.net.now,
            ),
            ctx=ctx,
        )

    def _retry_deferred_installs(self) -> None:
        deferred, self._deferred_installs = self._deferred_installs, []
        for req, ctx in deferred:
            self._on_handoff_request(req, ctx)

    @property
    def deferred_installs(self) -> int:
        """Handoff installs waiting for the local catalog to catch up."""
        return len(self._deferred_installs)

    # -- schema rollout -----------------------------------------------------------

    def _stamp_versions(self, components: Iterable[str]) -> tuple:
        """((component, effective_version), ...) for a wire payload."""
        catalog = self.world.catalog
        return tuple(
            (comp, catalog.effective_version(comp))
            for comp in sorted(components)
        )

    def _on_schema_alter(self, msg: SchemaAlter) -> None:
        """Coordinator broadcast: begin the alter on this shard's world."""
        catalog = self.world.catalog
        if catalog.effective_version(msg.component) >= msg.to_version:
            # Duplicate delivery (e.g. a failover re-broadcast): just
            # make sure an ack goes out once the version is committed.
            self._pending_schema_acks.append((msg.component, msg.to_version))
            return
        catalog.alter(
            msg.component,
            steps_from_records(msg.steps),
            batch_rows=msg.batch_rows,
        )
        self._pending_schema_acks.append((msg.component, msg.to_version))

    def _flush_schema_acks(self) -> None:
        """Ack every rollout whose local backfill has committed."""
        if not self._pending_schema_acks:
            return
        catalog = self.world.catalog
        still_pending = []
        for comp, to_version in self._pending_schema_acks:
            if catalog.version_of(comp) >= to_version:
                self.send(
                    COORD_ENDPOINT,
                    SchemaAlterAck(
                        shard=self.shard_id,
                        component=comp,
                        to_version=to_version,
                        tick=self.net.now,
                    ),
                )
            else:
                still_pending.append((comp, to_version))
        self._pending_schema_acks = still_pending

    # -- two-phase commit participant ---------------------------------------------

    def _entities_of(self, keyed_ops: Iterable[tuple[str, Hashable]]) -> set[int]:
        return {key[0] for _kind, key in keyed_ops}

    def _forward_prepare(
        self, prepare: TxnPrepare, next_hop: int,
        ctx: TraceContext | None = None,
    ) -> None:
        """In-flight forwarding: the entity moved, chase it."""
        self.forwarding.count_forward()
        self.stats.forwarded_messages += 1
        self.send(shard_endpoint(next_hop), prepare, ctx=ctx)

    def _on_prepare(
        self, prepare: TxnPrepare, ctx: TraceContext | None = None
    ) -> None:
        """Phase one: vote, execute locally, or forward to the new owner."""
        tracer = self.obs.tracer
        if not tracer.enabled:
            self._handle_prepare(prepare, ctx)
            return
        with tracer.span(
            "2pc.prepare", cat="cluster", txn=prepare.txn_id, shard=self.shard_id
        ):
            self._handle_prepare(prepare, ctx)

    def _handle_prepare(
        self, prepare: TxnPrepare, ctx: TraceContext | None = None
    ) -> None:
        self.stats.txn_prepares += 1
        catalog = self.world.catalog
        for comp, version in prepare.schema_versions:
            if catalog.effective_version(comp) != version:
                # Mixed-version window of a rolling alter: the shard's
                # schema disagrees with the version the coordinator
                # planned the transaction against.  Abort — no-wait 2PC
                # makes this safe, and the window closes within a tick.
                self.stats.txn_aborts_2pc += 1
                self._vote(prepare, commit=False, reads={}, ctx=ctx)
                return
        entities = self._entities_of(prepare.keyed_ops)
        missing = [e for e in sorted(entities) if e not in self.owned]
        if missing:
            hops = {self.forwarding.next_hop(e) for e in missing}
            if len(hops) == 1 and None not in hops:
                self._forward_prepare(prepare, hops.pop(), ctx)
                return
            # No breadcrumb (or the keys scattered): refuse safely.
            self.stats.txn_aborts_2pc += 1
            self._vote(prepare, commit=False, reads={}, ctx=ctx)
            return
        if prepare.local:
            ok = self.participant.execute_local(prepare.txn_id, prepare.ops)
            if not ok:
                self.stats.txn_aborts_2pc += 1
            self._vote(prepare, commit=ok, reads={}, applied=True, ctx=ctx)
            return
        reads = self.participant.prepare(prepare.txn_id, prepare.keyed_ops)
        if reads is None:
            self.stats.txn_aborts_2pc += 1
            self._vote(prepare, commit=False, reads={}, ctx=ctx)
        else:
            self._vote(prepare, commit=True, reads=reads, ctx=ctx)

    def _vote(
        self,
        prepare: TxnPrepare,
        commit: bool,
        reads: Mapping[Hashable, Any],
        applied: bool = False,
        ctx: TraceContext | None = None,
    ) -> None:
        self.send(
            COORD_ENDPOINT,
            TxnVote(
                txn_id=prepare.txn_id,
                shard=self.shard_id,
                commit=commit,
                keys=tuple(key for _kind, key in prepare.keyed_ops),
                reads=dict(reads),
                applied=applied,
            ),
            ctx=ctx,
        )

    def _on_decision(self, decision: TxnDecision) -> None:
        """Phase two: apply the coordinator's outcome."""
        if decision.commit:
            self.participant.commit(decision.txn_id, decision.writes)
        else:
            self.participant.abort(decision.txn_id)
            self.stats.txn_aborts_2pc += 1

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ShardHost(id={self.shard_id}, owned={len(self.owned)}, "
            f"tick={self.world.clock.tick})"
        )

