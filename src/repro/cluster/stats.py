"""Cluster observability: per-shard and cluster-wide counters.

Per-shard counters for the sharded runtime, now backed by the unified
:class:`~repro.obs.metrics.MetricsRegistry`: every shard keeps a
:class:`ShardStats` (a thin view over ``cluster.shard.*`` registry
cells), the coordinator keeps the cluster-level transaction/migration
tallies in the same registry, and :class:`ClusterStats` assembles both
into the record the E14 bench prints.  Imbalance is computed through
:class:`~repro.consistency.partition.PartitionMetrics` so the runtime
and the offline partitioning experiments report load skew identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consistency.partition import PartitionMetrics
from repro.obs.metrics import MetricsRegistry, StatView

#: ShardStats counter fields, in :meth:`ShardStats.as_row` order
#: (after the leading shard id).
_SHARD_FIELDS = (
    "ticks", "entities_owned", "migrations_in", "migrations_out",
    "txn_prepares", "txn_aborts_2pc", "cross_shard_messages",
    "forwarded_messages",
)


class ShardStats(StatView):
    """Counters one :class:`~repro.cluster.shard.ShardHost` maintains.

    Fields read and write like plain attributes; storage is registry
    cells (``cluster.shard.<field>`` labelled by shard), so the E14
    table and the cluster's metrics snapshot are views of one source.
    ``entities_owned`` is a gauge (it tracks a level); the rest are
    counters.
    """

    __slots__ = ("shard_id",)

    def __init__(self, shard_id: int, registry: MetricsRegistry | None = None):
        registry = registry if registry is not None else MetricsRegistry()
        label = str(shard_id)
        cells = {
            f: registry.counter(f"cluster.shard.{f}", shard=label)
            for f in _SHARD_FIELDS
            if f != "entities_owned"
        }
        cells["entities_owned"] = registry.gauge(
            "cluster.shard.entities_owned", shard=label
        )
        super().__init__(cells)
        self.shard_id = shard_id

    def as_row(self) -> tuple:
        """Values in the order the E14 per-shard table prints them."""
        return (
            self.shard_id,
            self.ticks,
            self.entities_owned,
            self.migrations_in,
            self.migrations_out,
            self.txn_prepares,
            self.txn_aborts_2pc,
            self.cross_shard_messages,
            self.forwarded_messages,
        )

    #: Column names matching :meth:`as_row`.
    COLUMNS = (
        "shard", "ticks", "owned", "mig_in", "mig_out",
        "prepares", "aborts_2pc", "msgs", "forwards",
    )


@dataclass
class ClusterStats:
    """Cluster-wide roll-up: shard counters plus coordinator tallies."""

    ticks: int = 0
    shards: list[ShardStats] = field(default_factory=list)
    local_committed: int = 0
    local_aborted: int = 0
    cross_committed: int = 0
    cross_aborted: int = 0
    migrations: int = 0
    rebalance_moves: int = 0

    @property
    def committed(self) -> int:
        """All committed transactions (local + cross-shard)."""
        return self.local_committed + self.cross_committed

    @property
    def aborted(self) -> int:
        """All aborted transactions (local + cross-shard)."""
        return self.local_aborted + self.cross_aborted

    @property
    def cross_shard_fraction(self) -> float:
        """Fraction of finished transactions that spanned shards."""
        total = self.committed + self.aborted
        cross = self.cross_committed + self.cross_aborted
        return cross / total if total else 0.0

    @property
    def abort_fraction(self) -> float:
        """Fraction of finished transactions that aborted."""
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    @property
    def total_messages(self) -> int:
        """Cross-shard messages originated by all shards."""
        return sum(s.cross_shard_messages for s in self.shards)

    def load_metrics(self) -> PartitionMetrics:
        """Current entity loads as a :class:`PartitionMetrics`."""
        return PartitionMetrics.from_loads(
            {s.shard_id: s.entities_owned for s in self.shards}
        )

    @property
    def imbalance(self) -> float:
        """Max/mean entity load across shards (1.0 = balanced)."""
        return self.load_metrics().imbalance

    def summary(self) -> str:
        """One-line roll-up for logs and the bench footer."""
        return (
            f"ticks={self.ticks} shards={len(self.shards)} "
            f"committed={self.committed} aborted={self.aborted} "
            f"cross={self.cross_shard_fraction:.1%} "
            f"migrations={self.migrations} imbalance={self.imbalance:.2f}"
        )
