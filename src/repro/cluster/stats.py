"""Cluster observability: per-shard and cluster-wide counters.

The first slice of an observability layer for the sharded runtime:
every shard keeps a :class:`ShardStats`, the coordinator keeps the
cluster-level transaction/migration tallies, and :class:`ClusterStats`
assembles both into the record the E14 bench prints.  Imbalance is
computed through :class:`~repro.consistency.partition.PartitionMetrics`
so the runtime and the offline partitioning experiments report load
skew identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consistency.partition import PartitionMetrics


@dataclass
class ShardStats:
    """Counters one :class:`~repro.cluster.shard.ShardHost` maintains."""

    shard_id: int
    ticks: int = 0
    entities_owned: int = 0
    migrations_in: int = 0
    migrations_out: int = 0
    txn_prepares: int = 0
    txn_aborts_2pc: int = 0
    cross_shard_messages: int = 0
    forwarded_messages: int = 0

    def as_row(self) -> tuple:
        """Values in the order the E14 per-shard table prints them."""
        return (
            self.shard_id,
            self.ticks,
            self.entities_owned,
            self.migrations_in,
            self.migrations_out,
            self.txn_prepares,
            self.txn_aborts_2pc,
            self.cross_shard_messages,
            self.forwarded_messages,
        )

    #: Column names matching :meth:`as_row`.
    COLUMNS = (
        "shard", "ticks", "owned", "mig_in", "mig_out",
        "prepares", "aborts_2pc", "msgs", "forwards",
    )


@dataclass
class ClusterStats:
    """Cluster-wide roll-up: shard counters plus coordinator tallies."""

    ticks: int = 0
    shards: list[ShardStats] = field(default_factory=list)
    local_committed: int = 0
    local_aborted: int = 0
    cross_committed: int = 0
    cross_aborted: int = 0
    migrations: int = 0
    rebalance_moves: int = 0

    @property
    def committed(self) -> int:
        """All committed transactions (local + cross-shard)."""
        return self.local_committed + self.cross_committed

    @property
    def aborted(self) -> int:
        """All aborted transactions (local + cross-shard)."""
        return self.local_aborted + self.cross_aborted

    @property
    def cross_shard_fraction(self) -> float:
        """Fraction of finished transactions that spanned shards."""
        total = self.committed + self.aborted
        cross = self.cross_committed + self.cross_aborted
        return cross / total if total else 0.0

    @property
    def abort_fraction(self) -> float:
        """Fraction of finished transactions that aborted."""
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    @property
    def total_messages(self) -> int:
        """Cross-shard messages originated by all shards."""
        return sum(s.cross_shard_messages for s in self.shards)

    def load_metrics(self) -> PartitionMetrics:
        """Current entity loads as a :class:`PartitionMetrics`."""
        return PartitionMetrics.from_loads(
            {s.shard_id: s.entities_owned for s in self.shards}
        )

    @property
    def imbalance(self) -> float:
        """Max/mean entity load across shards (1.0 = balanced)."""
        return self.load_metrics().imbalance

    def summary(self) -> str:
        """One-line roll-up for logs and the bench footer."""
        return (
            f"ticks={self.ticks} shards={len(self.shards)} "
            f"committed={self.committed} aborted={self.aborted} "
            f"cross={self.cross_shard_fraction:.1%} "
            f"migrations={self.migrations} imbalance={self.imbalance:.2f}"
        )
