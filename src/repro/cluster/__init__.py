"""Sharded world runtime: one `GameWorld` slice per shard, coordinated
deterministically over the simulated network — tick barrier, entity
migration with in-flight forwarding, cross-shard two-phase commit, and
dynamic load rebalancing."""

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.migration import ForwardingTable, InFlightHandoff
from repro.cluster.placement import (
    BubbleAwarePlacement,
    DynamicRebalancer,
    PlacementPolicy,
    StaticGridPlacement,
)
from repro.cluster.shard import COORD_ENDPOINT, ShardHost, shard_endpoint
from repro.cluster.stats import ClusterStats, ShardStats

__all__ = [
    "ClusterCoordinator",
    "ForwardingTable",
    "InFlightHandoff",
    "BubbleAwarePlacement",
    "DynamicRebalancer",
    "PlacementPolicy",
    "StaticGridPlacement",
    "COORD_ENDPOINT",
    "ShardHost",
    "shard_endpoint",
    "ClusterStats",
    "ShardStats",
]
