"""Entity placement policies and the dynamic rebalancer.

A placement policy answers two questions for the coordinator: where a
fresh entity spawns, and — every repartition interval — the *desired*
entity→shard assignment that the migration protocol then realises.

* :class:`StaticGridPlacement` is classic MMO geography, delegating to
  :class:`~repro.consistency.partition.StaticGridPartitioner`: entities
  migrate when they cross a region border, and the cluster pays a
  cross-shard transaction for every interacting pair the grid splits.
* :class:`BubbleAwarePlacement` delegates to
  :class:`~repro.consistency.bubbles.CausalityBubblePartitioner`:
  entities that can interact within the horizon land on the same shard,
  so cross-shard transactions only arise from directory staleness — at
  the price of load skew when the workload crowds into one bubble.

:class:`DynamicRebalancer` is the counterweight to that skew: it
consumes :class:`~repro.consistency.partition.PartitionMetrics` for the
desired assignment and moves entities off hot shards until imbalance
falls under its threshold, preferring entities with the fewest
interaction partners on the hot shard so each move severs as few edges
as possible.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

from repro.consistency.bubbles import CausalityBubblePartitioner, KinematicState
from repro.consistency.partition import (
    PartitionMetrics,
    StaticGridPartitioner,
    evaluate_assignment,
)
from repro.errors import ClusterError

Positions = Mapping[int, tuple[float, float]]
Velocities = Mapping[int, tuple[float, float]]


class PlacementPolicy:
    """Interface the coordinator drives; subclasses pick the strategy."""

    name = "base"

    def initial_shard(self, entity: int, x: float, y: float) -> int:
        """Shard a fresh entity spawns on."""
        raise NotImplementedError

    def desired_assignment(
        self,
        positions: Positions,
        velocities: Velocities,
        current: Mapping[int, int],
    ) -> dict[int, int]:
        """Full entity→shard assignment the cluster should converge to."""
        raise NotImplementedError


class StaticGridPlacement(PlacementPolicy):
    """Fixed-region geography via :class:`StaticGridPartitioner`."""

    name = "static-grid"

    def __init__(self, partitioner: StaticGridPartitioner):
        self.partitioner = partitioner

    def initial_shard(self, entity: int, x: float, y: float) -> int:
        """Shard owning the spawn point's grid cell."""
        return self.partitioner.shard_of(x, y)

    def desired_assignment(
        self,
        positions: Positions,
        velocities: Velocities,
        current: Mapping[int, int],
    ) -> dict[int, int]:
        """Pure geography: each entity belongs to its cell's shard."""
        return self.partitioner.assign(positions)


class BubbleAwarePlacement(PlacementPolicy):
    """Interaction-structure placement via causality bubbles.

    Bubbles are packed onto shards *stickily*: each bubble goes to the
    shard already owning the plurality of its members when that shard
    has capacity, so a stable workload causes near-zero migrations per
    repartition instead of a reshuffle every horizon.
    """

    name = "bubble-aware"

    def __init__(
        self,
        partitioner: CausalityBubblePartitioner,
        a_max: float = 1.0,
        capacity_slack: float = 1.5,
    ):
        if capacity_slack < 1.0:
            raise ClusterError("capacity_slack must be >= 1.0")
        self.partitioner = partitioner
        self.a_max = a_max
        self.capacity_slack = capacity_slack

    def initial_shard(self, entity: int, x: float, y: float) -> int:
        """Spawns spread round-robin; the next repartition refines."""
        return entity % self.partitioner.shards

    def desired_assignment(
        self,
        positions: Positions,
        velocities: Velocities,
        current: Mapping[int, int],
    ) -> dict[int, int]:
        """Partition into bubbles, then pack bubbles stickily."""
        states = {
            eid: KinematicState(
                x, y, *velocities.get(eid, (0.0, 0.0)), a_max=self.a_max
            )
            for eid, (x, y) in positions.items()
        }
        partition = self.partitioner.partition(states)
        shards = self.partitioner.shards
        total = len(positions)
        capacity = max(1.0, total * self.capacity_slack / shards)
        loads = [0] * shards
        assignment: dict[int, int] = {}
        for bubble in sorted(
            partition.bubbles, key=lambda b: (-b.size, min(b.members))
        ):
            votes: dict[int, int] = defaultdict(int)
            for eid in bubble.members:
                owner = current.get(eid)
                if owner is not None:
                    votes[owner] += 1
            preferred = None
            if votes:
                preferred = min(
                    votes, key=lambda s: (-votes[s], s)
                )
            if preferred is None or loads[preferred] + bubble.size > capacity:
                fallback = min(range(shards), key=lambda s: (loads[s], s))
                if (
                    preferred is None
                    or loads[fallback] + bubble.size <= capacity
                ):
                    preferred = fallback
            loads[preferred] += bubble.size
            for eid in bubble.members:
                assignment[eid] = preferred
        return assignment


class DynamicRebalancer:
    """Moves entities off hot shards until imbalance is acceptable.

    Consumes the :class:`PartitionMetrics` of the desired assignment;
    while ``imbalance`` exceeds ``threshold`` it reassigns the cheapest
    entity (fewest interaction partners left behind) from the hottest
    shard to the coldest, up to ``max_moves_per_pass`` per call.
    """

    def __init__(self, threshold: float = 1.25, max_moves_per_pass: int = 16):
        if threshold < 1.0:
            raise ClusterError("threshold must be >= 1.0")
        if max_moves_per_pass < 1:
            raise ClusterError("max_moves_per_pass must be positive")
        self.threshold = threshold
        self.max_moves_per_pass = max_moves_per_pass
        self.total_moves = 0

    def rebalance(
        self,
        assignment: Mapping[int, int],
        shard_ids: Iterable[int],
        pairs: Iterable[tuple[int, int]] = (),
    ) -> tuple[dict[int, int], int]:
        """Return (adjusted assignment, moves made this pass)."""
        result = dict(assignment)
        shard_ids = sorted(shard_ids)
        degree: dict[int, set[int]] = defaultdict(set)
        pair_list = list(pairs)
        for a, b in pair_list:
            degree[a].add(b)
            degree[b].add(a)
        moves = 0
        while moves < self.max_moves_per_pass:
            metrics = self._metrics(result, shard_ids, pair_list)
            if metrics.imbalance <= self.threshold:
                break
            hot = max(shard_ids, key=lambda s: (metrics.loads.get(s, 0), -s))
            cold = min(shard_ids, key=lambda s: (metrics.loads.get(s, 0), s))
            if hot == cold or metrics.loads.get(hot, 0) <= 1:
                break
            candidates = [e for e, s in result.items() if s == hot]
            victim = min(
                candidates,
                key=lambda e: (
                    sum(1 for p in degree.get(e, ()) if result.get(p) == hot),
                    e,
                ),
            )
            result[victim] = cold
            moves += 1
        self.total_moves += moves
        return result, moves

    def _metrics(
        self,
        assignment: Mapping[int, int],
        shard_ids: list[int],
        pairs: list[tuple[int, int]],
    ) -> PartitionMetrics:
        """Metrics including empty shards (loads must cover every shard)."""
        metrics = evaluate_assignment(assignment, pairs)
        loads = {s: 0 for s in shard_ids}
        loads.update(metrics.loads)
        return PartitionMetrics(
            shard_count=len(shard_ids),
            loads=loads,
            cross_partition_pairs=metrics.cross_partition_pairs,
            internal_pairs=metrics.internal_pairs,
        )
